#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "factor/exact.h"
#include "factor/sum_product.h"
#include "graph/topology.h"
#include "pdms/pdms.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

constexpr size_t kAttrs = 11;  // schemas of 11 attributes -> ∆ = 1/10

/// The introductory example as a live PDMS: Figure 4 topology, mappings
/// that are concept-identities except m24, which garbles attribute 0
/// (the paper's Creator). All schemas have 11 attributes so each peer's
/// auto-estimated ∆ is 0.1 (Section 4.5).
struct IntroPdms {
  topology::ExampleEdges edges;
  Pdms pdms;
};

IntroPdms MakeIntro(EngineOptions options, uint64_t seed = 17) {
  IntroPdms intro;
  Rng rng(seed);
  const Digraph graph = topology::ExampleGraph(&intro.edges);
  options.probe_ttl = 5;
  PdmsBuilder builder;
  builder.WithOptions(options);
  for (NodeId p = 0; p < 4; ++p) {
    Schema schema(StrFormat("p%u", p + 1));
    for (size_t a = 0; a < kAttrs; ++a) {
      EXPECT_TRUE(schema.AddAttribute(StrFormat("p%u_a%zu", p + 1, a)).ok());
    }
    builder.AddPeer(std::move(schema));
  }
  for (EdgeId e : graph.LiveEdges()) {
    const std::vector<AttributeId> wrong =
        e == intro.edges.m24 ? std::vector<AttributeId>{0}
                             : std::vector<AttributeId>{};
    builder.AddMapping(
        graph.edge(e).src, graph.edge(e).dst,
        MakeConceptMapping(StrFormat("m%u", e), kAttrs, wrong, &rng));
  }
  Result<Pdms> built = builder.Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  intro.pdms = std::move(built).value();
  return intro;
}

/// The paper's exact Section 4.5 feedback set injected over the intro
/// topology: f1+ (cycle m12,m23,m34,m41), f2− (cycle m12,m24,m41),
/// f3− (parallel m24 ‖ m23,m34), all for attribute 0, ∆ = 0.1.
void InjectPaperFeedback(Pdms* pdms, const topology::ExampleEdges& edges) {
  auto cycle = [](std::vector<EdgeId> cycle_edges, NodeId source) {
    Closure closure;
    closure.kind = Closure::Kind::kCycle;
    closure.edges = std::move(cycle_edges);
    closure.split = closure.edges.size();
    closure.source = source;
    closure.sink = source;
    return closure;
  };
  auto members = [](std::vector<EdgeId> member_edges) {
    std::vector<MappingVarKey> vars;
    for (EdgeId e : member_edges) vars.push_back(MappingVarKey{e, 0});
    return vars;
  };

  FeedbackAnnouncement f1;
  f1.closure = cycle({edges.m12, edges.m23, edges.m34, edges.m41}, 0);
  f1.delta = 0.1;
  f1.feedback = {{0, FeedbackSign::kPositive,
                  members({edges.m12, edges.m23, edges.m34, edges.m41})}};
  pdms->InjectFeedback(f1);

  FeedbackAnnouncement f2;
  f2.closure = cycle({edges.m12, edges.m24, edges.m41}, 0);
  f2.delta = 0.1;
  f2.feedback = {{0, FeedbackSign::kNegative,
                  members({edges.m12, edges.m24, edges.m41})}};
  pdms->InjectFeedback(f2);

  FeedbackAnnouncement f3;
  f3.closure.kind = Closure::Kind::kParallelPaths;
  f3.closure.edges = {edges.m24, edges.m23, edges.m34};
  f3.closure.split = 1;
  f3.closure.source = 1;
  f3.closure.sink = 3;
  f3.delta = 0.1;
  f3.feedback = {{0, FeedbackSign::kNegative,
                  members({edges.m24, edges.m23, edges.m34})}};
  pdms->InjectFeedback(f3);
}

// --- Discovery ---------------------------------------------------------------

TEST(EngineDiscoveryTest, FindsThePaperClosures) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  const size_t factors = intro.pdms.session().Discover();
  // Three closures (f1, f2, f3) × 11 root attributes.
  EXPECT_EQ(factors, 3 * kAttrs);
  // Replica placement: p2 owns mappings in all three closures.
  EXPECT_EQ(intro.pdms.peer(1).replica_count(), 3 * kAttrs);
  EXPECT_EQ(intro.pdms.peer(0).replica_count(), 2 * kAttrs);  // f1, f2
  EXPECT_EQ(intro.pdms.peer(2).replica_count(), 2 * kAttrs);  // f1, f3
  EXPECT_EQ(intro.pdms.peer(3).replica_count(), 2 * kAttrs);  // f1, f2
}

TEST(EngineDiscoveryTest, DiscoveryIsIdempotent) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  const size_t first = intro.pdms.session().Discover();
  const size_t second = intro.pdms.session().Discover();
  EXPECT_EQ(first, second);
}

TEST(EngineDiscoveryTest, ClosureLimitsCapDiscovery) {
  EngineOptions capped;
  capped.closure_limits.max_cycle_length = 3;
  capped.closure_limits.max_path_length = 2;
  IntroPdms capped_intro = MakeIntro(capped);
  const size_t factors = capped_intro.pdms.session().Discover();
  // Only f2 (length 3) and f3 (paths of length 1 and 2) survive the caps.
  EXPECT_EQ(factors, 2 * kAttrs);
}

// --- Inference ----------------------------------------------------------------

TEST(EngineInferenceTest, ClassifiesTheFaultyMapping) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  Session& session = intro.pdms.session();
  session.Discover();
  const ConvergenceReport report = session.Converge(200);
  EXPECT_TRUE(report.converged);
  // Attribute 0: m24 garbles it; everything else preserves it.
  EXPECT_LT(intro.pdms.Posterior(intro.edges.m24, 0), 0.45);
  EXPECT_GT(intro.pdms.Posterior(intro.edges.m23, 0), 0.5);
  EXPECT_GT(intro.pdms.Posterior(intro.edges.m12, 0), 0.5);
  EXPECT_GT(intro.pdms.Posterior(intro.edges.m34, 0), 0.5);
  EXPECT_GT(intro.pdms.Posterior(intro.edges.m41, 0), 0.5);
  // Unaffected attributes accumulate strong positive evidence.
  for (AttributeId a = 1; a < kAttrs; ++a) {
    EXPECT_GT(intro.pdms.Posterior(intro.edges.m23, a), 0.6) << "attr " << a;
    EXPECT_GT(intro.pdms.Posterior(intro.edges.m24, a), 0.6) << "attr " << a;
  }
}

TEST(EngineInferenceTest, InjectedPaperGraphMatchesPaperNumbers) {
  // With the paper's exact factor graph (Section 4.5), the decentralized
  // engine must land near exact inference's 0.59 / 0.31.
  IntroPdms intro = MakeIntro(EngineOptions{});
  InjectPaperFeedback(&intro.pdms, intro.edges);
  const ConvergenceReport report = intro.pdms.session().Converge(200);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(intro.pdms.Posterior(intro.edges.m23, 0), 1.623 / 2.75, 0.06);
  EXPECT_NEAR(intro.pdms.Posterior(intro.edges.m24, 0), 0.841 / 2.75, 0.06);
}

TEST(EngineInferenceTest, EmbeddedMatchesCentralizedFixedPoint) {
  EngineOptions options;
  options.tolerance = 1e-12;
  IntroPdms intro = MakeIntro(options);
  Session& session = intro.pdms.session();
  session.Discover();
  session.Converge(500);

  std::vector<MappingVarKey> vars;
  const FactorGraph global = intro.pdms.BuildGlobalFactorGraph(&vars);
  SumProductOptions sp;
  sp.tolerance = 1e-12;
  sp.max_iterations = 500;
  const SumProductResult central = SumProductEngine(global, sp).Run();
  ASSERT_TRUE(central.converged);
  for (VarId v = 0; v < vars.size(); ++v) {
    EXPECT_NEAR(intro.pdms.Posterior(vars[v].edge, vars[v].attribute),
                central.posteriors[v].ProbabilityCorrect(), 1e-6)
        << vars[v].ToString();
  }
}

TEST(EngineInferenceTest, EmbeddedCloseToExactInference) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  Session& session = intro.pdms.session();
  session.Discover();
  session.Converge(200);

  std::vector<MappingVarKey> vars;
  const FactorGraph global = intro.pdms.BuildGlobalFactorGraph(&vars);
  for (VarId v = 0; v < vars.size(); ++v) {
    Result<Belief> exact = ExactMarginalVariableElimination(global, v);
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(intro.pdms.Posterior(vars[v].edge, vars[v].attribute),
                exact->ProbabilityCorrect(), 0.06)
        << vars[v].ToString();
  }
}

TEST(EngineInferenceTest, ConvergesWithinAboutTenRounds) {
  // Section 5.1.1: "our embedded message passing scheme converges to
  // approximate results in ten iterations usually".
  IntroPdms intro = MakeIntro(EngineOptions{});
  Session& session = intro.pdms.session();
  session.Discover();
  // Count rounds until posteriors move < 1e-3 between rounds.
  size_t rounds = 0;
  double previous = intro.pdms.Posterior(intro.edges.m24, 0);
  for (; rounds < 50; ++rounds) {
    session.Step();
    const double current = intro.pdms.Posterior(intro.edges.m24, 0);
    if (rounds > 2 && std::abs(current - previous) < 1e-3) break;
    previous = current;
  }
  EXPECT_LE(rounds, 15u);
}

TEST(EngineInferenceTest, ObserverRecordsTrajectory) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  Session& session = intro.pdms.session();
  session.Discover();
  TrajectoryRecorder recorder({MappingVarKey{intro.edges.m24, 0},
                               MappingVarKey{intro.edges.m23, 0}});
  session.AddObserver(&recorder);
  const ConvergenceReport report = session.Converge(100);
  ASSERT_EQ(recorder.trajectory().size(), report.rounds);
  ASSERT_EQ(recorder.trajectory()[0].size(), 2u);
  // The faulty mapping's posterior decreases over time.
  EXPECT_LT(recorder.trajectory().back()[0],
            recorder.trajectory().front()[0] + 1e-9);
  // An unsubscribed observer stops recording.
  session.RemoveObserver(&recorder);
  const size_t frozen = recorder.trajectory().size();
  session.Step();
  EXPECT_EQ(recorder.trajectory().size(), frozen);
}

TEST(EngineInferenceTest, DeterministicAcrossRuns) {
  auto run = [] {
    IntroPdms intro = MakeIntro(EngineOptions{});
    intro.pdms.session().Discover();
    intro.pdms.session().Converge(100);
    std::vector<double> posteriors;
    for (EdgeId e : intro.pdms.graph().LiveEdges()) {
      for (AttributeId a = 0; a < kAttrs; ++a) {
        posteriors.push_back(intro.pdms.Posterior(e, a));
      }
    }
    return posteriors;
  };
  EXPECT_EQ(run(), run());
}

// --- ⊥ handling -----------------------------------------------------------------

TEST(EngineBottomTest, UnmappedAttributeHasZeroPosterior) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  // Knock out attribute 5 of m23's mapping.
  Peer& p2 = intro.pdms.peer(1);
  SchemaMapping patched = *p2.mapping(intro.edges.m23);
  ASSERT_TRUE(patched.Set(5, std::nullopt).ok());
  p2.RemoveMapping(intro.edges.m23);
  ASSERT_TRUE(p2.AddMapping(intro.edges.m23, std::move(patched)).ok());
  EXPECT_DOUBLE_EQ(intro.pdms.Posterior(intro.edges.m23, 5), 0.0);
  // Other attributes are unaffected.
  EXPECT_GT(intro.pdms.Posterior(intro.edges.m23, 1), 0.4);
}

// --- Query routing -----------------------------------------------------------------

void LoadDocuments(Pdms* pdms) {
  const std::vector<std::string> keywords = {"river wells", "garden pond",
                                             "river dedham"};
  for (PeerId p = 0; p < pdms->peer_count(); ++p) {
    for (uint64_t entity = 0; entity < 3; ++entity) {
      std::map<AttributeId, std::string> values;
      for (AttributeId a = 0; a < kAttrs; ++a) {
        values[a] = StrFormat("val_e%llu_a%u",
                              static_cast<unsigned long long>(entity), a);
      }
      values[1] = keywords[entity];
      pdms->peer(p).store().Insert(entity, values);
    }
  }
}

Query RiverQuery() {
  Query query("q1");
  query.AddProjection(0);
  query.AddSelection(1, "river");
  return query;
}

TEST(EngineQueryTest, WithoutInferenceFaultyMappingPollutesResults) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  LoadDocuments(&intro.pdms);
  const QueryReport report =
      intro.pdms.session().Query(/*origin=*/1, RiverQuery(), /*ttl=*/3);
  EXPECT_EQ(report.reached.size(), 4u);
  // p4 hears the query through the faulty m24 first (one hop) and answers
  // with a wrong projection: a false positive.
  bool any_false = false;
  for (const auto& [peer, row] : report.rows) {
    const std::string expected =
        StrFormat("val_e%llu_a0", static_cast<unsigned long long>(row.entity));
    if (row.values[0] != expected) any_false = true;
  }
  EXPECT_TRUE(any_false);
}

TEST(EngineQueryTest, InferenceBlocksFaultyMappingAndCleansResults) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  LoadDocuments(&intro.pdms);
  Session& session = intro.pdms.session();
  session.Discover();
  session.Converge(200);
  const QueryReport report =
      session.Query(/*origin=*/1, RiverQuery(), /*ttl=*/3);
  // The faulty mapping is ignored; the query still reaches every database
  // through p2 -> p3 -> p4 -> p1 (Section 4.5).
  EXPECT_EQ(report.reached.size(), 4u);
  EXPECT_NE(std::find(report.blocked_edges.begin(), report.blocked_edges.end(),
                      intro.edges.m24),
            report.blocked_edges.end());
  ASSERT_EQ(report.rows.size(), 8u);  // 4 peers × 2 river entities
  for (const auto& [peer, row] : report.rows) {
    EXPECT_EQ(row.values[0],
              StrFormat("val_e%llu_a0",
                        static_cast<unsigned long long>(row.entity)));
  }
}

TEST(EngineQueryTest, BottomBlocksForwardingEvenWithoutEvidence) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  LoadDocuments(&intro.pdms);
  Peer& p2 = intro.pdms.peer(1);
  SchemaMapping patched = *p2.mapping(intro.edges.m23);
  ASSERT_TRUE(patched.Set(0, std::nullopt).ok());  // projection attr -> ⊥
  p2.RemoveMapping(intro.edges.m23);
  ASSERT_TRUE(p2.AddMapping(intro.edges.m23, std::move(patched)).ok());
  const QueryReport report = intro.pdms.session().Query(1, RiverQuery(), 3);
  EXPECT_NE(std::find(report.blocked_edges.begin(), report.blocked_edges.end(),
                      intro.edges.m23),
            report.blocked_edges.end());
}

TEST(EngineQueryTest, ForwardWithoutEvidenceDisabledStopsColdStart) {
  EngineOptions options;
  options.forward_without_evidence = false;
  IntroPdms intro = MakeIntro(options);
  LoadDocuments(&intro.pdms);
  const QueryReport report = intro.pdms.session().Query(1, RiverQuery(), 3);
  EXPECT_EQ(report.reached.size(), 1u);  // only the origin answers
  EXPECT_EQ(report.rows.size(), 2u);
}

TEST(EngineQueryTest, BatchedQueriesMatchSequentialOnConvergedNetwork) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  LoadDocuments(&intro.pdms);
  Session& session = intro.pdms.session();
  session.Discover();
  session.Converge(200);

  const QueryReport sequential = session.Query(1, RiverQuery(), 3);

  std::vector<QueryRequest> requests;
  for (PeerId origin = 0; origin < 4; ++origin) {
    requests.push_back(QueryRequest{origin, RiverQuery(), 3});
  }
  const std::vector<QueryReport> batched = session.QueryAll(requests);
  ASSERT_EQ(batched.size(), requests.size());
  // The batch's report for origin 1 matches the sequential run: same rows
  // (same peers, same values), same blocked mapping.
  const QueryReport& from_p2 = batched[1];
  ASSERT_EQ(from_p2.rows.size(), sequential.rows.size());
  for (size_t i = 0; i < from_p2.rows.size(); ++i) {
    EXPECT_EQ(from_p2.rows[i].first, sequential.rows[i].first);
    EXPECT_EQ(from_p2.rows[i].second.values, sequential.rows[i].second.values);
  }
  EXPECT_EQ(from_p2.blocked_edges, sequential.blocked_edges);
  // Every origin's query produced rows of its own.
  for (const QueryReport& report : batched) {
    EXPECT_FALSE(report.rows.empty());
  }
}

// --- Prior updates (Section 4.4) --------------------------------------------------

TEST(EnginePriorTest, EmUpdateMatchesPaperNumbers) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  InjectPaperFeedback(&intro.pdms, intro.edges);
  intro.pdms.session().Converge(200);
  intro.pdms.UpdatePriors();
  // Section 4.5: priors move to about 0.55 and 0.4. Exact inference gives
  // (0.5 + 0.590)/2 = 0.545 and (0.5 + 0.306)/2 = 0.403; the loopy
  // fixed point sits a few hundredths below the exact m23 value.
  EXPECT_NEAR(intro.pdms.Prior(intro.edges.m23, 0), 0.55, 0.035);
  EXPECT_NEAR(intro.pdms.Prior(intro.edges.m24, 0), 0.40, 0.02);
}

TEST(EnginePriorTest, ExplicitPriorOverrides) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  intro.pdms.SetPrior(intro.edges.m24, 0, 1.0);  // expert-validated
  InjectPaperFeedback(&intro.pdms, intro.edges);
  intro.pdms.session().Converge(200);
  // With a hard prior of 1 the negative feedback cannot pull m24 down.
  EXPECT_GT(intro.pdms.Posterior(intro.edges.m24, 0), 0.9);
}

// --- Schedules -----------------------------------------------------------------------

TEST(EngineScheduleTest, LazyPiggybacksOnQueries) {
  EngineOptions options;
  options.schedule = ScheduleKind::kLazy;
  options.theta = 0.45;
  IntroPdms intro = MakeIntro(options);
  LoadDocuments(&intro.pdms);
  Session& session = intro.pdms.session();
  session.Discover();
  const uint64_t beliefs_before =
      intro.pdms.transport().stats().sent[static_cast<size_t>(
          MessageKind::kBelief)];

  // Drive convergence purely with query traffic.
  for (int i = 0; i < 40; ++i) {
    session.Query(static_cast<PeerId>(i % 4), RiverQuery(), 4);
    session.Step();
  }
  // No standalone belief messages were ever sent...
  EXPECT_EQ(intro.pdms.transport().stats().sent[static_cast<size_t>(
                MessageKind::kBelief)],
            beliefs_before);
  // ...yet the faulty mapping was identified.
  EXPECT_LT(intro.pdms.Posterior(intro.edges.m24, 0), 0.45);
  EXPECT_GT(intro.pdms.Posterior(intro.edges.m23, 0), 0.5);
}

TEST(EngineScheduleTest, PeriodicRespectsPeriod) {
  EngineOptions options;
  options.period_ticks = 3;
  IntroPdms intro = MakeIntro(options);
  Session& session = intro.pdms.session();
  session.Discover();
  uint64_t rounds_with_traffic = 0;
  for (int i = 0; i < 9; ++i) {
    const RoundReport report = session.Step();
    if (report.belief_updates_sent > 0) ++rounds_with_traffic;
  }
  EXPECT_EQ(rounds_with_traffic, 3u);
}

// --- Fault tolerance (Section 5.1.3) ------------------------------------------------

TEST(EngineFaultTest, ConvergesUnderMessageLoss) {
  EngineOptions reliable;
  IntroPdms baseline = MakeIntro(reliable);
  baseline.pdms.session().Discover();
  const ConvergenceReport clean = baseline.pdms.session().Converge(400);
  ASSERT_TRUE(clean.converged);

  EngineOptions lossy;
  lossy.network.send_probability = 0.5;
  lossy.network.seed = 99;
  IntroPdms dropped = MakeIntro(lossy);
  dropped.pdms.session().Discover();
  const ConvergenceReport noisy = dropped.pdms.session().Converge(2000);
  EXPECT_TRUE(noisy.converged);
  EXPECT_GT(noisy.rounds, clean.rounds);
  for (EdgeId e : baseline.pdms.graph().LiveEdges()) {
    for (AttributeId a = 0; a < kAttrs; ++a) {
      EXPECT_NEAR(dropped.pdms.Posterior(e, a), baseline.pdms.Posterior(e, a),
                  1e-3);
    }
  }
}

// --- Churn ---------------------------------------------------------------------------

TEST(EngineChurnTest, RemovingMappingPurgesEvidence) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  Session& session = intro.pdms.session();
  session.Discover();
  session.Converge(200);
  ASSERT_TRUE(intro.pdms.RemoveMapping(intro.edges.m24).ok());
  // All replicas referencing m24 are gone network-wide: only f1 remains.
  EXPECT_EQ(intro.pdms.UniqueFactorCount(), kAttrs);
  // Re-discovery finds nothing new (f1 closures already known).
  session.Discover();
  EXPECT_EQ(intro.pdms.UniqueFactorCount(), kAttrs);
  const ConvergenceReport report = session.Converge(100);
  EXPECT_TRUE(report.converged);
  // Single positive 4-cycle, uniform priors, ∆ = 0.1:
  // P = (1 + ∆(8−4)) / (1 + ∆(8−4) + ∆(8−1)) = 1.4 / 2.1 = 2/3.
  EXPECT_NEAR(intro.pdms.Posterior(intro.edges.m23, 0), 2.0 / 3.0, 1e-6);
}

// --- Coarse granularity -----------------------------------------------------------------

TEST(EngineGranularityTest, CoarseTracksWholeMappings) {
  EngineOptions options;
  options.granularity = Granularity::kCoarse;
  IntroPdms intro = MakeIntro(options);
  const size_t factors = intro.pdms.session().Discover();
  EXPECT_EQ(factors, 3u);  // one replica per closure, not per attribute
  intro.pdms.session().Converge(200);
  EXPECT_LT(intro.pdms.PosteriorCoarse(intro.edges.m24),
            intro.pdms.PosteriorCoarse(intro.edges.m23));
  // m24 is wrong on 1 of 11 attributes; coarsening calls the whole mapping
  // into question — exactly the resolution the paper's fine mode fixes.
  EXPECT_LT(intro.pdms.PosteriorCoarse(intro.edges.m24), 0.5);
}

// --- Overhead accounting (Section 4.3.1) -------------------------------------------------

TEST(EngineOverheadTest, RemoteMessagesRespectPaperBound) {
  IntroPdms intro = MakeIntro(EngineOptions{});
  intro.pdms.session().Discover();
  intro.pdms.session().Step();  // populate messages
  for (PeerId p = 0; p < 4; ++p) {
    const Peer& peer = intro.pdms.peer(p);
    size_t actual_updates = 0;
    for (const Outgoing& outgoing : peer.CollectOutgoingBeliefs()) {
      actual_updates += std::get<BeliefMessage>(outgoing.payload).update_count();
    }
    EXPECT_LE(actual_updates, peer.RemoteMessageBound())
        << "peer " << p;
  }
}

// --- Decentralized == centralized, property-style across random networks -----------------

class RandomNetworkEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNetworkEquivalence, EmbeddedMatchesCentralized) {
  Rng rng(GetParam());
  const Digraph graph = topology::ErdosRenyi(7, 0.3, &rng);
  if (graph.edge_count() == 0) GTEST_SKIP() << "empty draw";
  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = 5;
  network_options.error_rate = 0.2;
  network_options.null_rate = 0.05;
  const SyntheticPdms synthetic =
      BuildSyntheticPdms(graph, network_options, &rng);
  EngineOptions options;
  options.tolerance = 1e-12;
  options.probe_ttl = 5;
  Result<Pdms> built =
      PdmsBuilder::FromSynthetic(synthetic).WithOptions(options).Build();
  ASSERT_TRUE(built.ok());
  Pdms pdms = std::move(built).value();
  pdms.session().Discover();
  pdms.session().Converge(1000);

  std::vector<MappingVarKey> vars;
  const FactorGraph global = pdms.BuildGlobalFactorGraph(&vars);
  if (global.variable_count() == 0) GTEST_SKIP() << "no closures in draw";
  SumProductOptions sp;
  sp.tolerance = 1e-12;
  sp.max_iterations = 1000;
  const SumProductResult central = SumProductEngine(global, sp).Run();
  for (VarId v = 0; v < vars.size(); ++v) {
    EXPECT_NEAR(pdms.Posterior(vars[v].edge, vars[v].attribute),
                central.posteriors[v].ProbabilityCorrect(), 1e-5)
        << "seed " << GetParam() << " " << vars[v].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pdms
