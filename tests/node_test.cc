// Integration tests for the pdms_node daemon layer: a PDMS partitioned
// across shards that exchange traffic over real framed TCP must land on
// posteriors bitwise-identical to the single-process engine, and must keep
// serving θ-gated snapshot queries while inference rounds are running.
//
// Three levels:
//  - two PdmsNode instances in one process (threads + loopback TCP),
//  - a query client hitting a node mid-round over a plain socket,
//  - two actual `pdms_node` processes (exec'd binary, announce-dir
//    rendezvous) diffed against the binary's single-process reference mode.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bibliographic_pdms.h"
#include "gtest/gtest.h"
#include "net/socket_transport.h"
#include "node/pdms_node.h"

namespace pdms {
namespace {

/// Same knobs as tools/pdms_node_main.cc — the workload every test level
/// runs. period_ticks stays at its default of 1 (required by node mode).
EngineOptions WorkloadOptions() {
  EngineOptions options;
  options.delta_override = 0.1;
  options.probe_ttl = 4;
  options.closure_limits.max_cycle_length = 4;
  options.closure_limits.max_path_length = 3;
  options.damping = 0.5;
  return options;
}

constexpr size_t kRounds = 25;

/// Builds the bibliographic workload over a 2-way sharded socket transport
/// (peers round-robined across shards) and wraps it in a PdmsNode.
std::unique_ptr<PdmsNode> MakeShardNode(uint32_t shard, NodeOptions node_options) {
  SocketTransport* transport = nullptr;
  bench::BibliographicPdms workload = bench::MakeBibliographicPdms(
      WorkloadOptions(),
      [&](size_t peer_count, const EngineOptions&)
          -> std::unique_ptr<Transport> {
        SocketTransportOptions options;
        options.peer_count = peer_count;
        options.local_shard = shard;
        options.shard_addresses = {"127.0.0.1:0", "127.0.0.1:0"};
        options.shard_of.resize(peer_count);
        for (PeerId p = 0; p < peer_count; ++p) options.shard_of[p] = p % 2;
        auto created = SocketTransport::Create(std::move(options));
        EXPECT_TRUE(created.ok()) << created.status().ToString();
        if (!created.ok()) return nullptr;
        transport = created->get();
        return std::move(created).value();
      });
  EXPECT_NE(transport, nullptr);
  if (transport == nullptr) return nullptr;
  Result<std::unique_ptr<PdmsNode>> node =
      PdmsNode::Create(std::move(workload.pdms), node_options);
  EXPECT_TRUE(node.ok()) << node.status().ToString();
  if (!node.ok()) return nullptr;
  return std::move(node).value();
}

TEST(PdmsNodeTest, TwoShardsMatchSingleProcessBitwise) {
  // Reference: the exact same workload on the in-process simulator.
  bench::BibliographicPdms reference =
      bench::MakeBibliographicPdms(WorkloadOptions());
  ASSERT_GT(reference.pdms.session().Discover(), 0u);
  reference.pdms.session().Converge(kRounds);

  NodeOptions node_options;
  node_options.max_rounds = kRounds;
  std::unique_ptr<PdmsNode> node0 = MakeShardNode(0, node_options);
  std::unique_ptr<PdmsNode> node1 = MakeShardNode(1, node_options);
  ASSERT_NE(node0, nullptr);
  ASSERT_NE(node1, nullptr);

  ASSERT_TRUE(node0->SetShardAddress(1, node1->local_address()).ok());
  ASSERT_TRUE(node1->SetShardAddress(0, node0->local_address()).ok());
  ASSERT_TRUE(node0->Connect().ok());
  ASSERT_TRUE(node1->Connect().ok());

  // Discovery and rounds are mark-synchronized across shards, so both
  // nodes must run them concurrently.
  struct ShardRun {
    Status status = Status::Ok();
    size_t replicas = 0;
    ConvergenceReport report;
  };
  ShardRun runs[2];
  auto drive = [](PdmsNode* node, ShardRun* run) {
    Result<size_t> replicas = node->RunDiscovery();
    if (!replicas.ok()) {
      run->status = replicas.status();
      return;
    }
    run->replicas = *replicas;
    Result<ConvergenceReport> report = node->RunRounds();
    if (!report.ok()) {
      run->status = report.status();
      return;
    }
    run->report = *report;
  };
  std::thread t0(drive, node0.get(), &runs[0]);
  std::thread t1(drive, node1.get(), &runs[1]);
  t0.join();
  t1.join();
  ASSERT_TRUE(runs[0].status.ok()) << runs[0].status.ToString();
  ASSERT_TRUE(runs[1].status.ok()) << runs[1].status.ToString();
  EXPECT_GT(runs[0].replicas, 0u);
  EXPECT_GT(runs[1].replicas, 0u);
  // Lockstep marks force both shards through the identical round schedule.
  EXPECT_EQ(runs[0].report.rounds, runs[1].report.rounds);

  // Every live edge is owned (posterior-wise) by its source peer's shard;
  // whichever node hosts that peer must agree with the reference bitwise.
  size_t compared = 0;
  const Digraph& graph = reference.pdms.graph();
  for (EdgeId e : graph.LiveEdges()) {
    const PeerId owner = graph.edge(e).src;
    PdmsNode& node = owner % 2 == 0 ? *node0 : *node1;
    ASSERT_TRUE(node.transport().IsLocalPeer(owner));
    const size_t attrs = reference.family[owner].schema.size();
    for (AttributeId a = 0; a < attrs; ++a) {
      ASSERT_EQ(node.pdms().Posterior(e, a), reference.pdms.Posterior(e, a))
          << "edge " << e << " attribute " << a;
      ++compared;
    }
  }
  EXPECT_GT(compared, 100u);
}

TEST(PdmsNodeTest, ServesSnapshotQueriesWhileRoundsRun) {
  // Single-shard node over the loopback socket transport: the same control
  // plane a remote shard would use also answers external query clients.
  SocketTransport* transport = nullptr;
  bench::BibliographicPdms workload = bench::MakeBibliographicPdms(
      WorkloadOptions(),
      [&](size_t peer_count, const EngineOptions&)
          -> std::unique_ptr<Transport> {
        auto created = SocketTransport::CreateLoopback(peer_count);
        EXPECT_NE(created, nullptr);
        transport = created.get();
        return created;
      });
  ASSERT_NE(transport, nullptr);

  // Give the origin peer something to answer with.
  const std::string attribute_name =
      workload.family[0].schema.attribute(0).name;
  workload.pdms.peer(0).store().Insert(1, {{0, "node-test-alpha"}});

  NodeOptions node_options;
  node_options.max_rounds = 40;
  node_options.round_delay_ms = 15;  // keep the round loop open for clients
  Result<std::unique_ptr<PdmsNode>> created =
      PdmsNode::Create(std::move(workload.pdms), node_options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  PdmsNode& node = **created;
  ASSERT_TRUE(node.Connect().ok());

  std::atomic<bool> rounds_done{false};
  Status run_status = Status::Ok();
  std::thread driver([&] {
    Result<size_t> replicas = node.RunDiscovery();
    if (!replicas.ok()) {
      run_status = replicas.status();
    } else {
      Result<ConvergenceReport> report = node.RunRounds();
      if (!report.ok()) run_status = report.status();
    }
    rounds_done.store(true);
  });

  // Hammer the node with external (plain socket) queries the entire time
  // the driver is discovering and iterating; each one must come back well
  // formed with the inserted document.
  QueryRequestFrame request;
  request.request_id = 7;
  request.origin = 0;
  request.ttl = 2;
  request.text = "SELECT " + attribute_name;
  size_t served = 0;
  while (!rounds_done.load()) {
    Result<QueryResponseFrame> response =
        PdmsNode::QueryNode(node.local_address(), request, /*timeout_ms=*/5000);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->ok) << response->error;
    EXPECT_EQ(response->request_id, request.request_id);
    EXPECT_GE(response->reached, 1u);
    bool found = false;
    for (const std::string& row : response->rows) {
      found = found || row.find("node-test-alpha") != std::string::npos;
    }
    EXPECT_TRUE(found) << "inserted document missing from query result";
    ++served;
  }
  driver.join();
  ASSERT_TRUE(run_status.ok()) << run_status.ToString();
  EXPECT_GT(served, 0u);

  // Unknown origin peers are rejected, not crashed on.
  request.origin = 1000;
  Result<QueryResponseFrame> rejected =
      PdmsNode::QueryNode(node.local_address(), request, /*timeout_ms=*/5000);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected->ok);
}

TEST(PdmsNodeTest, ResumesFromSnapshotWithoutRediscovery) {
  char dir_template[] = "/tmp/pdms_node_state_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string state_dir = dir_template;

  // Single-shard node over the loopback socket transport, checkpointing
  // every round into `state_dir`.
  const auto make_node = [&state_dir]() -> std::unique_ptr<PdmsNode> {
    bench::BibliographicPdms workload = bench::MakeBibliographicPdms(
        WorkloadOptions(),
        [&](size_t peer_count, const EngineOptions&)
            -> std::unique_ptr<Transport> {
          return SocketTransport::CreateLoopback(peer_count);
        });
    NodeOptions node_options;
    node_options.max_rounds = kRounds;
    node_options.state_dir = state_dir;
    Result<std::unique_ptr<PdmsNode>> node =
        PdmsNode::Create(std::move(workload.pdms), node_options);
    EXPECT_TRUE(node.ok()) << node.status().ToString();
    if (!node.ok()) return nullptr;
    return std::move(node).value();
  };

  const auto all_posteriors = [](const PdmsNode& node) {
    std::vector<double> posteriors;
    const Digraph& graph = node.pdms().graph();
    for (EdgeId e : graph.LiveEdges()) {
      // Attribute count varies per schema; probe until out of range is not
      // possible here, so walk the owner's schema size.
      const PeerId owner = graph.edge(e).src;
      const size_t attrs = node.pdms().peer(owner).schema().size();
      for (AttributeId a = 0; a < attrs; ++a) {
        posteriors.push_back(node.pdms().Posterior(e, a));
      }
    }
    return posteriors;
  };

  // First life: an uninterrupted run, leaving snapshots behind.
  std::unique_ptr<PdmsNode> first = make_node();
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(first->Connect().ok());
  // An empty state dir is a cold start, not an error to retry around.
  EXPECT_EQ(first->TryRestoreFromState().status().code(),
            StatusCode::kNotFound);
  Result<size_t> replicas = first->RunDiscovery();
  ASSERT_TRUE(replicas.ok()) << replicas.status().ToString();
  ASSERT_GT(*replicas, 0u);
  Result<ConvergenceReport> full = first->RunRounds();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const std::vector<double> reference = all_posteriors(*first);
  first.reset();

  // Second life: restore the newest cut instead of re-discovering, finish
  // the remaining rounds, and land on the identical fixpoint.
  std::unique_ptr<PdmsNode> second = make_node();
  ASSERT_NE(second, nullptr);
  ASSERT_TRUE(second->Connect().ok());
  Result<uint64_t> restored = second->TryRestoreFromState();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT(*restored, 0u);
  EXPECT_LT(*restored, static_cast<uint64_t>(kRounds));
  // The restored image already holds every replica discovery would find.
  EXPECT_GT(second->pdms().peer(0).replica_count(), 0u);
  ASSERT_TRUE(second->PerformRejoin().ok());  // single shard: trivial
  Result<ConvergenceReport> resumed = second->RunRounds();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(all_posteriors(*second), reference);

  std::system(("rm -rf " + state_dir).c_str());
}

TEST(PdmsNodeTest, QuantizedResumeContinuesThePrecisionTrajectory) {
  char dir_template[] = "/tmp/pdms_node_qstate_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string state_dir = dir_template;

  // Same shape as ResumesFromSnapshotWithoutRediscovery, but with adaptive
  // value quantization on: the snapshot carries each link's precision rank,
  // and the resumed run must keep stepping up exactly where the first life
  // left off to land on the identical fixpoint.
  const auto make_node =
      [&state_dir](double value_budget) -> std::unique_ptr<PdmsNode> {
    EngineOptions engine_options = WorkloadOptions();
    engine_options.value_precision.error_budget = value_budget;
    bench::BibliographicPdms workload = bench::MakeBibliographicPdms(
        engine_options,
        [&](size_t peer_count, const EngineOptions&)
            -> std::unique_ptr<Transport> {
          return SocketTransport::CreateLoopback(peer_count);
        });
    NodeOptions node_options;
    node_options.max_rounds = kRounds;
    node_options.state_dir = state_dir;
    Result<std::unique_ptr<PdmsNode>> node =
        PdmsNode::Create(std::move(workload.pdms), node_options);
    EXPECT_TRUE(node.ok()) << node.status().ToString();
    if (!node.ok()) return nullptr;
    return std::move(node).value();
  };

  const auto all_posteriors = [](const PdmsNode& node) {
    std::vector<double> posteriors;
    const Digraph& graph = node.pdms().graph();
    for (EdgeId e : graph.LiveEdges()) {
      const PeerId owner = graph.edge(e).src;
      const size_t attrs = node.pdms().peer(owner).schema().size();
      for (AttributeId a = 0; a < attrs; ++a) {
        posteriors.push_back(node.pdms().Posterior(e, a));
      }
    }
    return posteriors;
  };

  constexpr double kBudget = 1e-3;
  std::unique_ptr<PdmsNode> first = make_node(kBudget);
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(first->Connect().ok());
  ASSERT_TRUE(first->RunDiscovery().ok());
  Result<ConvergenceReport> full = first->RunRounds();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const std::vector<double> reference = all_posteriors(*first);
  first.reset();

  // A node configured with a *different* precision policy must refuse the
  // snapshots outright: the state epoch folds the value budget in, so the
  // store treats them as belonging to a foreign deployment.
  std::unique_ptr<PdmsNode> mismatched = make_node(0.0);
  ASSERT_NE(mismatched, nullptr);
  ASSERT_TRUE(mismatched->Connect().ok());
  EXPECT_EQ(mismatched->TryRestoreFromState().status().code(),
            StatusCode::kNotFound);
  mismatched.reset();

  // Same policy: restore the newest cut mid-trajectory and finish; the
  // restored link ranks make the remaining rounds — and the posteriors —
  // bitwise-identical to the uninterrupted run.
  std::unique_ptr<PdmsNode> second = make_node(kBudget);
  ASSERT_NE(second, nullptr);
  ASSERT_TRUE(second->Connect().ok());
  Result<uint64_t> restored = second->TryRestoreFromState();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT(*restored, 0u);
  ASSERT_TRUE(second->PerformRejoin().ok());
  Result<ConvergenceReport> resumed = second->RunRounds();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(all_posteriors(*second), reference);

  std::system(("rm -rf " + state_dir).c_str());
}

// --- Two real processes ---------------------------------------------------------

/// Parses `P <edge> <attr> <hex-float>` lines into (edge, attr) → text.
/// Duplicate keys fail the test: each mapping has exactly one owner shard.
std::map<std::pair<unsigned, unsigned>, std::string> ParsePosteriorFile(
    const std::string& path) {
  std::map<std::pair<unsigned, unsigned>, std::string> posteriors;
  FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << "missing output file " << path;
  if (f == nullptr) return posteriors;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned edge = 0, attribute = 0;
    char value[128] = {};
    if (std::sscanf(line, "P %u %u %127s", &edge, &attribute, value) != 3) {
      ADD_FAILURE() << "unparseable line in " << path << ": " << line;
      continue;
    }
    const bool inserted =
        posteriors.emplace(std::make_pair(edge, attribute), value).second;
    EXPECT_TRUE(inserted) << "duplicate posterior for edge " << edge
                          << " attribute " << attribute << " in " << path;
  }
  std::fclose(f);
  return posteriors;
}

TEST(PdmsNodeTest, TwoProcessesMatchReferenceBitwise) {
#ifndef PDMS_NODE_BINARY
  GTEST_SKIP() << "pdms_node binary path not wired in";
#else
  const std::string binary = PDMS_NODE_BINARY;
  char dir_template[] = "/tmp/pdms_node_test_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;

  const std::string rounds = " --max-rounds=" + std::to_string(kRounds);
  const std::string serve = binary + " serve --shards=2 --announce-dir=" +
                            dir + rounds;
  // Both shards in parallel; fail if either process does.
  const std::string command =
      serve + " --shard=0 >" + dir + "/shard0.txt 2>" + dir + "/shard0.err & "
      "P0=$!; " +
      serve + " --shard=1 >" + dir + "/shard1.txt 2>" + dir + "/shard1.err & "
      "P1=$!; wait $P0 || exit 1; wait $P1 || exit 1";
  ASSERT_EQ(std::system(command.c_str()), 0)
      << "distributed run failed — see " << dir << "/shard*.err";
  ASSERT_EQ(std::system((binary + " reference" + rounds + " >" + dir +
                         "/reference.txt")
                            .c_str()),
            0);

  const auto reference = ParsePosteriorFile(dir + "/reference.txt");
  ASSERT_FALSE(reference.empty());
  auto merged = ParsePosteriorFile(dir + "/shard0.txt");
  for (const auto& [key, value] : ParsePosteriorFile(dir + "/shard1.txt")) {
    const bool inserted = merged.emplace(key, value).second;
    EXPECT_TRUE(inserted) << "edge " << key.first
                          << " owned by both shards";
  }
  // The shards partition the mappings, so their union must equal the
  // reference output line for line — hex floats, so bitwise.
  EXPECT_EQ(merged, reference);

  std::system(("rm -rf " + dir).c_str());
#endif
}

}  // namespace
}  // namespace pdms
