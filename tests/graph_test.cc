#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/closure.h"
#include "graph/digraph.h"
#include "graph/topology.h"
#include "util/rng.h"

namespace pdms {
namespace {

using topology::ExampleEdges;

std::set<EdgeId> EdgeSet(const Closure& closure) {
  return {closure.edges.begin(), closure.edges.end()};
}

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph graph(3);
  EXPECT_EQ(graph.node_count(), 3u);
  Result<EdgeId> e = graph.AddEdge(0, 1);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(graph.edge(*e).src, 0u);
  EXPECT_EQ(graph.edge(*e).dst, 1u);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_FALSE(graph.HasEdge(1, 0));
}

TEST(DigraphTest, RejectsSelfLoopsAndBadEndpoints) {
  Digraph graph(2);
  EXPECT_FALSE(graph.AddEdge(0, 0).ok());
  EXPECT_FALSE(graph.AddEdge(0, 5).ok());
  EXPECT_FALSE(graph.AddEdge(9, 1).ok());
}

TEST(DigraphTest, MultiEdgesAllowed) {
  Digraph graph(2);
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_EQ(graph.out_edges(0).size(), 2u);
}

TEST(DigraphTest, RemoveEdgeTombstones) {
  Digraph graph(3);
  const EdgeId e01 = *graph.AddEdge(0, 1);
  const EdgeId e12 = *graph.AddEdge(1, 2);
  ASSERT_TRUE(graph.RemoveEdge(e01).ok());
  EXPECT_FALSE(graph.edge_alive(e01));
  EXPECT_TRUE(graph.edge_alive(e12));
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_TRUE(graph.out_edges(0).empty());
  EXPECT_TRUE(graph.in_edges(1).empty());
  // Ids remain stable: the next edge gets a fresh id.
  const EdgeId e20 = *graph.AddEdge(2, 0);
  EXPECT_EQ(e20, 2u);
  // Double-remove fails.
  EXPECT_EQ(graph.RemoveEdge(e01).code(), StatusCode::kNotFound);
}

TEST(DigraphTest, AddNodeGrowsGraph) {
  Digraph graph;
  const NodeId a = graph.AddNode();
  const NodeId b = graph.AddNode();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_TRUE(graph.AddEdge(a, b).ok());
}

TEST(DigraphTest, FindEdgeReturnsLiveEdge) {
  Digraph graph(2);
  const EdgeId e = *graph.AddEdge(0, 1);
  Result<EdgeId> found = graph.FindEdge(0, 1);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, e);
  EXPECT_EQ(graph.FindEdge(1, 0).status().code(), StatusCode::kNotFound);
}

TEST(ClusteringTest, TriangleHasCoefficientOne) {
  Digraph graph(3);
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  ASSERT_TRUE(graph.AddEdge(2, 0).ok());
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(graph), 1.0);
}

TEST(ClusteringTest, StarHasCoefficientZero) {
  Digraph graph(4);
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  ASSERT_TRUE(graph.AddEdge(0, 2).ok());
  ASSERT_TRUE(graph.AddEdge(0, 3).ok());
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(graph), 0.0);
}

TEST(PathLengthTest, ChainAverage) {
  // 0-1-2: distances 1,1,2 (each direction) -> mean 4/3.
  Digraph graph(3);
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  EXPECT_NEAR(AveragePathLength(graph), 4.0 / 3.0, 1e-12);
}

// --- Closures on the paper's example graphs -------------------------------

TEST(ClosureTest, ExampleGraphDirectedCycles) {
  ExampleEdges ids;
  const Digraph graph = topology::ExampleGraph(&ids);
  ClosureFinderOptions options;
  const auto cycles = FindDirectedCycles(graph, options);
  // The paper's f1 = m12->m23->m34->m41 and f2 = m12->m24->m41 (Section 3.3).
  ASSERT_EQ(cycles.size(), 2u);
  std::set<std::set<EdgeId>> found;
  for (const auto& c : cycles) {
    EXPECT_EQ(c.kind, Closure::Kind::kCycle);
    found.insert(EdgeSet(c));
  }
  EXPECT_TRUE(found.count({ids.m12, ids.m23, ids.m34, ids.m41}) > 0);
  EXPECT_TRUE(found.count({ids.m12, ids.m24, ids.m41}) > 0);
}

TEST(ClosureTest, ExampleGraphDirectedParallelPaths) {
  ExampleEdges ids;
  const Digraph graph = topology::ExampleGraphDirected(&ids);
  ClosureFinderOptions options;
  const auto parallels = FindParallelPaths(graph, options);
  // The paper's f3 = m21 || m24->m41, f4 = m24 || m23->m34,
  // f5 = m21 || m23->m34->m41 (Section 3.3, Figure 5).
  ASSERT_EQ(parallels.size(), 3u);
  std::set<std::set<EdgeId>> found;
  for (const auto& c : parallels) {
    EXPECT_EQ(c.kind, Closure::Kind::kParallelPaths);
    found.insert(EdgeSet(c));
  }
  EXPECT_TRUE(found.count({ids.m21, ids.m24, ids.m41}) > 0);
  EXPECT_TRUE(found.count({ids.m24, ids.m23, ids.m34}) > 0);
  EXPECT_TRUE(found.count({ids.m21, ids.m23, ids.m34, ids.m41}) > 0);
}

TEST(ClosureTest, ParallelPathsSharingInteriorVertexExcluded) {
  ExampleEdges ids;
  const Digraph graph = topology::ExampleGraphDirected(&ids);
  ClosureFinderOptions options;
  const auto parallels = FindParallelPaths(graph, options);
  // m24->m41 and m23->m34->m41 share vertex p4 and edge m41: never paired.
  for (const auto& c : parallels) {
    const auto edges = EdgeSet(c);
    EXPECT_NE(edges, (std::set<EdgeId>{ids.m24, ids.m41, ids.m23, ids.m34}));
  }
}

TEST(ClosureTest, ExampleGraphUndirectedCycles) {
  ExampleEdges ids;
  const Digraph graph = topology::ExampleGraph(&ids);
  ClosureFinderOptions options;
  const auto cycles = FindUndirectedCycles(graph, options);
  // Section 3.2: f1 = m12-m23-m34-m41, f2 = m12-m24-m41, f3 = m23-m34-m24.
  ASSERT_EQ(cycles.size(), 3u);
  std::set<std::set<EdgeId>> found;
  for (const auto& c : cycles) found.insert(EdgeSet(c));
  EXPECT_TRUE(found.count({ids.m12, ids.m23, ids.m34, ids.m41}) > 0);
  EXPECT_TRUE(found.count({ids.m12, ids.m24, ids.m41}) > 0);
  EXPECT_TRUE(found.count({ids.m23, ids.m34, ids.m24}) > 0);
}

TEST(ClosureTest, MinCycleLengthFiltersTwoCycles) {
  Digraph graph(2);
  const EdgeId ab = *graph.AddEdge(0, 1);
  const EdgeId ba = *graph.AddEdge(1, 0);
  ClosureFinderOptions options;  // default min length 3
  EXPECT_TRUE(FindDirectedCycles(graph, options).empty());
  options.min_cycle_length = 2;
  const auto cycles = FindDirectedCycles(graph, options);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(EdgeSet(cycles[0]), (std::set<EdgeId>{ab, ba}));
}

TEST(ClosureTest, MaxCycleLengthBoundsSearch) {
  const Digraph graph = topology::Ring(6);
  ClosureFinderOptions options;
  options.max_cycle_length = 5;
  EXPECT_TRUE(FindDirectedCycles(graph, options).empty());
  options.max_cycle_length = 6;
  EXPECT_EQ(FindDirectedCycles(graph, options).size(), 1u);
}

TEST(ClosureTest, RingHasExactlyOneCycle) {
  for (size_t n : {3u, 5u, 8u}) {
    const Digraph graph = topology::Ring(n);
    ClosureFinderOptions options;
    options.max_cycle_length = n;
    const auto cycles = FindDirectedCycles(graph, options);
    ASSERT_EQ(cycles.size(), 1u) << "ring size " << n;
    EXPECT_EQ(cycles[0].Length(), n);
  }
}

TEST(ClosureTest, TwoParallelEdgesFormParallelPathPair) {
  Digraph graph(2);
  const EdgeId a = *graph.AddEdge(0, 1);
  const EdgeId b = *graph.AddEdge(0, 1);
  ClosureFinderOptions options;
  const auto parallels = FindParallelPaths(graph, options);
  ASSERT_EQ(parallels.size(), 1u);
  EXPECT_EQ(EdgeSet(parallels[0]), (std::set<EdgeId>{a, b}));
  EXPECT_EQ(parallels[0].split, 1u);
}

TEST(ClosureTest, RemovedEdgesDoNotAppear) {
  ExampleEdges ids;
  Digraph graph = topology::ExampleGraph(&ids);
  ASSERT_TRUE(graph.RemoveEdge(ids.m24).ok());
  ClosureFinderOptions options;
  const auto cycles = FindDirectedCycles(graph, options);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(EdgeSet(cycles[0]),
            (std::set<EdgeId>{ids.m12, ids.m23, ids.m34, ids.m41}));
}

TEST(ClosureTest, ClosureToStringIsReadable) {
  ExampleEdges ids;
  const Digraph graph = topology::ExampleGraph(&ids);
  const auto cycles = FindDirectedCycles(graph, ClosureFinderOptions{});
  ASSERT_FALSE(cycles.empty());
  EXPECT_NE(cycles[0].ToString().find("cycle("), std::string::npos);
}

// --- Figure 8 construction -------------------------------------------------

TEST(TopologyTest, ExtendedExampleLengthensCycles) {
  for (size_t inserted : {0u, 1u, 3u, 6u}) {
    ExampleEdges ids;
    std::vector<EdgeId> chain;
    const Digraph graph =
        topology::ExampleGraphExtended(inserted, &ids, &chain);
    EXPECT_EQ(graph.node_count(), 4 + inserted);
    EXPECT_EQ(chain.size(), inserted + 1);
    ClosureFinderOptions options;
    options.max_cycle_length = 6 + inserted;
    const auto cycles = FindDirectedCycles(graph, options);
    ASSERT_EQ(cycles.size(), 2u) << "inserted " << inserted;
    std::set<size_t> lengths;
    for (const auto& c : cycles) lengths.insert(c.Length());
    // f1 grows to 4 + inserted mappings, f2 to 3 + inserted.
    EXPECT_TRUE(lengths.count(4 + inserted) > 0);
    EXPECT_TRUE(lengths.count(3 + inserted) > 0);
  }
}

TEST(TopologyTest, ExtendedWithZeroEqualsExample) {
  ExampleEdges a;
  ExampleEdges b;
  const Digraph base = topology::ExampleGraph(&a);
  const Digraph extended = topology::ExampleGraphExtended(0, &b, nullptr);
  EXPECT_EQ(base.node_count(), extended.node_count());
  EXPECT_EQ(base.edge_count(), extended.edge_count());
}

// --- Random topologies ------------------------------------------------------

TEST(TopologyTest, ErdosRenyiEdgeDensity) {
  Rng rng(99);
  const Digraph graph = topology::ErdosRenyi(50, 0.1, &rng);
  EXPECT_EQ(graph.node_count(), 50u);
  // E[edges] = 50*49*0.1 = 245; allow generous slack.
  EXPECT_GT(graph.edge_count(), 150u);
  EXPECT_LT(graph.edge_count(), 350u);
}

TEST(TopologyTest, BarabasiAlbertStructure) {
  Rng rng(7);
  const Digraph graph = topology::BarabasiAlbert(100, 2, &rng);
  EXPECT_EQ(graph.node_count(), 100u);
  // Seed clique has 3 links; each of the 97 later nodes adds 2.
  EXPECT_EQ(graph.edge_count(), 3u + 97u * 2u);
  // Scale-free nets have hubs: max degree well above the mean.
  const auto degrees = UndirectedDegrees(graph);
  const size_t max_degree = *std::max_element(degrees.begin(), degrees.end());
  EXPECT_GT(max_degree, 10u);
}

TEST(TopologyTest, BarabasiAlbertClusteringExceedsRandom) {
  Rng rng1(11);
  Rng rng2(11);
  const Digraph ba = topology::BarabasiAlbert(200, 3, &rng1);
  const Digraph er =
      topology::ErdosRenyi(200, static_cast<double>(ba.edge_count()) /
                                    (200.0 * 199.0), &rng2);
  EXPECT_GT(ClusteringCoefficient(ba), ClusteringCoefficient(er));
}

TEST(TopologyTest, WattsStrogatzDegreeAndRewiring) {
  Rng rng(13);
  const Digraph graph = topology::WattsStrogatz(60, 4, 0.1, &rng);
  EXPECT_EQ(graph.node_count(), 60u);
  EXPECT_EQ(graph.edge_count(), 120u);  // n*k/2 links preserved by rewiring
}

TEST(TopologyTest, SymmetrizeAddsMissingReverses) {
  ExampleEdges ids;
  Digraph graph = topology::ExampleGraph(&ids);
  const auto added = topology::Symmetrize(&graph);
  EXPECT_EQ(added.size(), 5u);
  EXPECT_EQ(graph.edge_count(), 10u);
  for (EdgeId id : graph.LiveEdges()) {
    const Edge& e = graph.edge(id);
    EXPECT_TRUE(graph.HasEdge(e.dst, e.src));
  }
}

TEST(TopologyTest, GeneratorsAreDeterministic) {
  Rng rng_a(42);
  Rng rng_b(42);
  const Digraph a = topology::BarabasiAlbert(80, 2, &rng_a);
  const Digraph b = topology::BarabasiAlbert(80, 2, &rng_b);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId id : a.LiveEdges()) {
    EXPECT_EQ(a.edge(id).src, b.edge(id).src);
    EXPECT_EQ(a.edge(id).dst, b.edge(id).dst);
  }
}

}  // namespace
}  // namespace pdms
