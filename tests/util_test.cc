#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"

namespace pdms {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing mapping");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NotFound: missing mapping");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    PDMS_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::InvalidArgument("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(100);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(100);
  parent2.Fork();
  EXPECT_EQ(parent.NextUint64(), parent2.NextUint64());
  EXPECT_NE(child.NextUint64(), parent.NextUint64());
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts{"a", "", "bc", "d"};
  EXPECT_EQ(Join(parts, ","), "a,,bc,d");
  EXPECT_EQ(Split("a,,bc,d", ','), parts);
}

TEST(StringUtilTest, SplitSingleToken) {
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
}

TEST(StringUtilTest, TrimRemovesOuterWhitespace) {
  EXPECT_EQ(Trim("  hello world \t\n"), "hello world");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("CreAtor"), "creator");
  EXPECT_EQ(ToUpper("creAtor"), "CREATOR");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("Photoshop_Image", "Photo"));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_TRUE(EndsWith("Photoshop_Image", "_Image"));
  EXPECT_FALSE(EndsWith("abc", "dabc"));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, EditDistanceKnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("creator", "creator"), 0u);
  EXPECT_EQ(EditDistance("creator", "createur"), 2u);
}

TEST(StringUtilTest, EditSimilarityBounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  EXPECT_GT(EditSimilarity("author", "auteur"), 0.4);
}

TEST(StringUtilTest, TrigramSimilarity) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("ab", "ab"), 1.0);  // short-string path
  EXPECT_DOUBLE_EQ(TrigramSimilarity("ab", "ba"), 0.0);
  EXPECT_GT(TrigramSimilarity("creator", "creators"), 0.5);
  EXPECT_LT(TrigramSimilarity("creator", "subject"), 0.2);
}

TEST(StringUtilTest, TokenizeIdentifierVariants) {
  EXPECT_EQ(TokenizeIdentifier("hasAuthorName"),
            (std::vector<std::string>{"has", "author", "name"}));
  EXPECT_EQ(TokenizeIdentifier("date_of_birth"),
            (std::vector<std::string>{"date", "of", "birth"}));
  EXPECT_EQ(TokenizeIdentifier("Painting/Painter"),
            (std::vector<std::string>{"painting", "painter"}));
  // Consecutive uppercase runs (acronyms) are kept as a single token.
  EXPECT_EQ(TokenizeIdentifier("HTTPServer"),
            (std::vector<std::string>{"httpserver"}));
  EXPECT_TRUE(TokenizeIdentifier("").empty());
}

TEST(OnlineStatsTest, MeanAndVariance) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  Rng rng(55);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram hist(0.0, 1.0, 10);
  hist.Add(0.05);
  hist.Add(0.15);
  hist.Add(0.15);
  hist.Add(-5.0);  // clamps to first bin
  hist.Add(5.0);   // clamps to last bin
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.bin(0), 2u);
  EXPECT_EQ(hist.bin(1), 2u);
  EXPECT_EQ(hist.bin(9), 1u);
}

TEST(PercentileTest, NearestRank) {
  std::vector<double> samples{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 1.0);
  EXPECT_TRUE(std::isnan(Percentile({}, 50)));
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table;
  table.SetHeader({"theta", "precision"});
  table.AddRow({"0.1", "0.85"});
  table.AddNumericRow({0.2, 0.8126}, 3);
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("theta"), std::string::npos);
  EXPECT_NE(rendered.find("0.813"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable table;
  table.SetHeader({"name", "value"});
  table.AddRow({"with,comma", "with\"quote"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

}  // namespace
}  // namespace pdms
