// Tests for the public API layer (pdms/): builder validation, the
// Transport conformance contract shared by SimTransport and
// InstantTransport, transport-equivalence of inference results, the
// session observer hook, and the Result<T> utilities it leans on.

#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "net/socket_transport.h"
#include "pdms/pdms.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

constexpr size_t kAttrs = 11;

Schema MakeSchema(const std::string& name, size_t attrs = kAttrs) {
  Schema schema(name);
  for (size_t a = 0; a < attrs; ++a) {
    EXPECT_TRUE(schema.AddAttribute(name + "_a" + std::to_string(a)).ok());
  }
  return schema;
}

SchemaMapping Identity(const std::string& name, size_t attrs = kAttrs) {
  SchemaMapping mapping(name, attrs);
  for (AttributeId a = 0; a < attrs; ++a) {
    EXPECT_TRUE(mapping.Set(a, a).ok());
  }
  return mapping;
}

/// The intro example (Figure 4) through the public builder; m24 (EdgeId 4)
/// garbles attribute 0.
PdmsBuilder IntroBuilder(EngineOptions options, uint64_t seed = 17) {
  Rng rng(seed);
  options.probe_ttl = 5;
  PdmsBuilder builder;
  builder.WithOptions(options);
  for (int p = 0; p < 4; ++p) {
    builder.AddPeer(MakeSchema(StrFormat("p%d", p + 1)));
  }
  const std::vector<std::pair<PeerId, PeerId>> links = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}};
  for (EdgeId e = 0; e < links.size(); ++e) {
    const std::vector<AttributeId> wrong =
        e == 4 ? std::vector<AttributeId>{0} : std::vector<AttributeId>{};
    builder.AddMapping(
        links[e].first, links[e].second,
        MakeConceptMapping(StrFormat("m%u", e), kAttrs, wrong, &rng));
  }
  return builder;
}

// --- Builder validation -------------------------------------------------------

TEST(BuilderValidationTest, EmptyNetworkIsRejected) {
  Result<Pdms> built = PdmsBuilder().Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BuilderValidationTest, DuplicateEdgeIsRejected) {
  PdmsBuilder builder;
  builder.AddPeer(MakeSchema("a")).AddPeer(MakeSchema("b"));
  builder.AddMapping(0, 1, Identity("m0"));
  builder.AddMapping(0, 1, Identity("m0_again"));
  Result<Pdms> built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kAlreadyExists);
  EXPECT_NE(built.status().message().find("m0_again"), std::string::npos);
}

TEST(BuilderValidationTest, OutOfRangePeerIsRejected) {
  PdmsBuilder builder;
  builder.AddPeer(MakeSchema("a")).AddPeer(MakeSchema("b"));
  builder.AddMapping(0, 7, Identity("m_oor"));
  Result<Pdms> built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(built.status().message().find("m_oor"), std::string::npos);
}

TEST(BuilderValidationTest, SelfLoopIsRejected) {
  PdmsBuilder builder;
  builder.AddPeer(MakeSchema("a")).AddPeer(MakeSchema("b"));
  builder.AddMapping(1, 1, Identity("m_self"));
  Result<Pdms> built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderValidationTest, MappingArityMismatchIsRejected) {
  PdmsBuilder builder;
  builder.AddPeer(MakeSchema("a", 11)).AddPeer(MakeSchema("b", 11));
  builder.AddMapping(0, 1, Identity("m_small", 7));  // 7 != 11
  Result<Pdms> built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("m_small"), std::string::npos);
}

TEST(BuilderValidationTest, MappingTargetOutOfSchemaIsRejected) {
  PdmsBuilder builder;
  builder.AddPeer(MakeSchema("a", 4)).AddPeer(MakeSchema("b", 3));
  SchemaMapping mapping("m_target", 4);
  ASSERT_TRUE(mapping.Set(0, 0).ok());
  ASSERT_TRUE(mapping.Set(1, 2).ok());
  ASSERT_TRUE(mapping.Set(2, 3).ok());  // target schema has only 3 attrs
  Result<Pdms> built =
      PdmsBuilder().AddPeer(MakeSchema("a", 4)).AddPeer(MakeSchema("b", 3))
          .AddMapping(0, 1, mapping).Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("m_target"), std::string::npos);
}

TEST(BuilderValidationTest, NullTransportFactoryIsRejected) {
  PdmsBuilder builder;
  builder.AddPeer(MakeSchema("a")).AddPeer(MakeSchema("b"));
  builder.AddMapping(0, 1, Identity("m0"));
  builder.WithTransport([](size_t, const EngineOptions&) {
    return std::unique_ptr<Transport>();
  });
  Result<Pdms> built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderValidationTest, HappyPathAssignsSequentialIds) {
  Result<Pdms> built = IntroBuilder(EngineOptions{}).Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Pdms pdms = std::move(built).value();
  EXPECT_TRUE(pdms.valid());
  EXPECT_EQ(pdms.peer_count(), 4u);
  EXPECT_EQ(pdms.graph().edge_count(), 5u);
  // AddMapping order is EdgeId order: edge 4 is p2 -> p4.
  EXPECT_EQ(pdms.graph().edge(4).src, 1u);
  EXPECT_EQ(pdms.graph().edge(4).dst, 3u);
  EXPECT_EQ(pdms.peer(1).schema().name(), "p2");
}

TEST(BuilderValidationTest, FromSyntheticRejectsGraphsWithRemovedEdges) {
  Rng rng(3);
  Digraph graph = topology::BarabasiAlbert(8, 2, &rng);
  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = 6;
  SyntheticPdms synthetic = BuildSyntheticPdms(graph, network_options, &rng);
  ASSERT_TRUE(synthetic.graph.RemoveEdge(0).ok());  // tombstone a live edge
  Result<Pdms> built = PdmsBuilder::FromSynthetic(synthetic).Build();
  ASSERT_FALSE(built.ok());
  // Sequential AddMapping cannot reproduce the original edge ids once a
  // hole exists; silently renumbering would misattribute posteriors.
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BuilderValidationTest, FromSyntheticPreservesEdgeIds) {
  Rng rng(3);
  const Digraph graph = topology::BarabasiAlbert(12, 2, &rng);
  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = 6;
  const SyntheticPdms synthetic =
      BuildSyntheticPdms(graph, network_options, &rng);
  Result<Pdms> built = PdmsBuilder::FromSynthetic(synthetic).Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  for (EdgeId e : graph.LiveEdges()) {
    EXPECT_EQ(built->graph().edge(e).src, graph.edge(e).src) << "edge " << e;
    EXPECT_EQ(built->graph().edge(e).dst, graph.edge(e).dst) << "edge " << e;
  }
}

// --- Transport conformance ----------------------------------------------------

using TransportFactory = std::function<std::unique_ptr<Transport>(size_t)>;

struct TransportCase {
  const char* label;
  TransportFactory make;
};

class TransportConformanceTest
    : public ::testing::TestWithParam<TransportCase> {};

BeliefMessage MakeBelief(double p) {
  BeliefMessage message;
  message.AddGroup(0, FactorId{0x1, 0x2},
                   {BeliefEntry{0, Belief::FromProbability(p)}});
  return message;
}

/// Ticks until `peer` receives something or `limit` ticks pass.
std::vector<Envelope> DrainWithin(Transport& transport, PeerId peer,
                                  int limit = 8) {
  for (int tick = 0; tick <= limit; ++tick) {
    std::vector<Envelope> due = transport.Drain(peer);
    if (!due.empty()) return due;
    transport.AdvanceTick();
  }
  return {};
}

TEST_P(TransportConformanceTest, DeliversToTheRightPeerIntact) {
  auto transport = GetParam().make(3);
  EXPECT_EQ(transport->peer_count(), 3u);
  EXPECT_FALSE(transport->name().empty());
  transport->Send(0, 1, EdgeId{2}, MakeBelief(0.7));
  EXPECT_TRUE(transport->HasPendingMessages());
  EXPECT_TRUE(transport->Drain(2).empty());  // wrong peer gets nothing

  const std::vector<Envelope> due = DrainWithin(*transport, 1);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].from, 0u);
  EXPECT_EQ(due[0].to, 1u);
  ASSERT_TRUE(due[0].via.has_value());
  EXPECT_EQ(*due[0].via, 2u);
  const auto* belief = std::get_if<BeliefMessage>(&due[0].payload);
  ASSERT_NE(belief, nullptr);
  ASSERT_EQ(belief->update_count(), 1u);
  EXPECT_NEAR(belief->entries[0].belief.ProbabilityCorrect(), 0.7, 1e-12);
  EXPECT_FALSE(transport->HasPendingMessages());
}

TEST_P(TransportConformanceTest, PreservesSendOrderPerPeer) {
  auto transport = GetParam().make(2);
  for (int i = 0; i < 5; ++i) {
    ProbeMessage probe;
    probe.origin = static_cast<PeerId>(i);
    transport->Send(0, 1, std::nullopt, probe);
  }
  const std::vector<Envelope> due = DrainWithin(*transport, 1);
  ASSERT_EQ(due.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<ProbeMessage>(due[i].payload).origin,
              static_cast<PeerId>(i));
  }
}

TEST_P(TransportConformanceTest, CountsSentAndDelivered) {
  auto transport = GetParam().make(2);
  transport->Send(0, 1, std::nullopt, MakeBelief(0.5));
  transport->Send(0, 1, std::nullopt, ProbeMessage{});
  const size_t belief = static_cast<size_t>(MessageKind::kBelief);
  const size_t probe = static_cast<size_t>(MessageKind::kProbe);
  EXPECT_EQ(transport->stats().sent[belief], 1u);
  EXPECT_EQ(transport->stats().sent[probe], 1u);
  EXPECT_EQ(transport->stats().TotalSent(), 2u);
  (void)DrainWithin(*transport, 1);
  EXPECT_EQ(transport->stats().delivered[belief] +
                transport->stats().dropped[belief],
            1u);
  transport->ResetStats();
  EXPECT_EQ(transport->stats().TotalSent(), 0u);
}

TEST_P(TransportConformanceTest, TicksOnlyMoveForward) {
  auto transport = GetParam().make(2);
  const uint64_t start = transport->now();
  transport->AdvanceTick();
  transport->AdvanceTick();
  EXPECT_EQ(transport->now(), start + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, TransportConformanceTest,
    ::testing::Values(
        TransportCase{"sim",
                      [](size_t peers) -> std::unique_ptr<Transport> {
                        return std::make_unique<SimTransport>(
                            peers, NetworkOptions{});
                      }},
        TransportCase{"instant",
                      [](size_t peers) -> std::unique_ptr<Transport> {
                        return std::make_unique<InstantTransport>(peers);
                      }},
        TransportCase{"socket",
                      [](size_t peers) -> std::unique_ptr<Transport> {
                        auto transport =
                            SocketTransport::CreateLoopback(peers);
                        EXPECT_NE(transport, nullptr);
                        return transport;
                      }}),
    [](const ::testing::TestParamInfo<TransportCase>& info) {
      return std::string(info.param.label);
    });

// --- Transport equivalence ----------------------------------------------------

TEST(TransportEquivalenceTest, InstantMatchesLosslessSimPosteriors) {
  // End-to-end: discovery + convergence under the zero-delay transport
  // must land on the same fixed point as the lossless discrete-tick
  // simulator — the timing of message delivery cannot move the result.
  EngineOptions options;
  options.tolerance = 1e-12;

  Pdms sim = IntroBuilder(options).Build().value();
  sim.session().Discover();
  ASSERT_TRUE(sim.session().Converge(2000).converged);

  Pdms instant =
      IntroBuilder(options).WithInstantTransport().Build().value();
  EXPECT_EQ(instant.transport().name(), "instant");
  instant.session().Discover();
  ASSERT_TRUE(instant.session().Converge(2000).converged);

  EXPECT_EQ(instant.UniqueFactorCount(), sim.UniqueFactorCount());
  for (EdgeId e : sim.graph().LiveEdges()) {
    for (AttributeId a = 0; a < kAttrs; ++a) {
      EXPECT_NEAR(instant.Posterior(e, a), sim.Posterior(e, a), 1e-9)
          << "edge " << e << " attr " << a;
    }
  }
}

TEST(TransportEquivalenceTest, InstantNeedsNoTickPerHopForQueries) {
  // Same query results, and the instant transport's whole query exchange
  // finishes without waiting a tick per hop.
  EngineOptions options;
  Pdms instant =
      IntroBuilder(options).WithInstantTransport().Build().value();
  for (PeerId p = 0; p < instant.peer_count(); ++p) {
    instant.peer(p).store().Insert(1, {{0, "Robinson"}, {1, "river"}});
  }
  instant.session().Discover();
  instant.session().Converge(200);
  Query query("q1");
  query.AddProjection(0);
  query.AddSelection(1, "river");
  const QueryReport report = instant.session().Query(1, query, 3);
  EXPECT_EQ(report.reached.size(), 4u);
  EXPECT_EQ(report.rows.size(), 4u);
}

// --- Parallel round execution ---------------------------------------------------

/// Discovery + convergence on a symmetrized scale-free synthetic network,
/// returning every (edge, attribute) posterior. `parallelism` must not
/// change the result: peers only touch their own state during a round and
/// the engine issues transport sends in canonical peer order, so even the
/// lossy simulator draws the same drop sequence.
std::vector<double> ConvergedPosteriorsOn(
    size_t parallelism, double send_probability,
    PdmsBuilder::TransportFactory transport_factory,
    double value_budget = 0.0,
    const std::function<void(PdmsBuilder&)>& customize = nullptr) {
  constexpr size_t kNetAttrs = 6;
  Rng rng(123);
  Digraph graph = topology::BarabasiAlbert(24, 2, &rng);
  topology::Symmetrize(&graph);
  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = kNetAttrs;
  const SyntheticPdms synthetic =
      BuildSyntheticPdms(graph, network_options, &rng);

  EngineOptions options;
  options.probe_ttl = 3;
  options.closure_limits.min_cycle_length = 2;
  options.closure_limits.max_cycle_length = 3;
  options.network.send_probability = send_probability;
  options.network.seed = 7;
  options.parallelism = parallelism;
  // 24 peers would fall below the fan-out threshold and silently run
  // inline — force the pool so this test keeps exercising the actual
  // parallel round path (and TSan keeps seeing it).
  options.min_peers_per_lane = 1;
  PdmsBuilder builder = PdmsBuilder::FromSynthetic(synthetic);
  builder.WithOptions(options).WithValueErrorBudget(value_budget);
  if (transport_factory) builder.WithTransport(std::move(transport_factory));
  if (customize) customize(builder);
  Pdms pdms = builder.Build().value();
  EXPECT_GT(pdms.session().Discover(), 0u);
  pdms.session().Converge(60);

  std::vector<double> posteriors;
  for (EdgeId e : pdms.graph().LiveEdges()) {
    for (AttributeId a = 0; a < kNetAttrs; ++a) {
      posteriors.push_back(pdms.Posterior(e, a));
    }
  }
  return posteriors;
}

std::vector<double> ConvergedPosteriors(size_t parallelism,
                                        double send_probability) {
  return ConvergedPosteriorsOn(parallelism, send_probability, nullptr);
}

TEST(ParallelDeterminismTest, ParallelPosteriorsMatchSerialBitwise) {
  // Bitwise, not approximate: peers only touch their own state during a
  // round and sends are issued in canonical order, so the alias-grouped
  // encoding must produce value-identical posteriors at every parallelism
  // level — including under lossy transport, where the drop draws depend
  // only on the (canonical) send sequence.
  for (const double send_probability : {1.0, 0.6}) {
    const std::vector<double> serial =
        ConvergedPosteriors(1, send_probability);
    ASSERT_FALSE(serial.empty());
    for (const size_t parallelism : {2, 4, 8}) {
      const std::vector<double> parallel =
          ConvergedPosteriors(parallelism, send_probability);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(parallel[i], serial[i])
            << "posterior " << i << " at parallelism " << parallelism
            << ", P(send)=" << send_probability;
      }
    }
  }
}

TEST(TransportEquivalenceTest, SocketMatchesSimPosteriorsBitwise) {
  // The socket loopback transport routes every envelope through a real
  // framed TCP self-connection: encode, kernel, decode, deterministic
  // (deliver_at, from, seq) drain order. Against the lossless simulator
  // the posteriors must come back bitwise-identical at every parallelism
  // level — any codec round-trip wobble or delivery reordering shows up
  // here as a hard failure.
  const std::vector<double> reference = ConvergedPosteriors(1, 1.0);
  ASSERT_FALSE(reference.empty());
  for (const size_t parallelism : {1, 2, 4, 8}) {
    const std::vector<double> socket = ConvergedPosteriorsOn(
        parallelism, 1.0,
        [](size_t peers, const EngineOptions&) -> std::unique_ptr<Transport> {
          return SocketTransport::CreateLoopback(peers);
        });
    ASSERT_EQ(socket.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(socket[i], reference[i])
          << "posterior " << i << " over sockets at parallelism "
          << parallelism;
    }
  }
}

TEST(ParallelDeterminismTest, BuilderParallelismKnobIsAppliedAtBuildTime) {
  EngineOptions options;
  Pdms pdms = IntroBuilder(options).WithParallelism(4).Build().value();
  EXPECT_EQ(pdms.options().parallelism, 4u);
  // Order with WithOptions must not matter.
  PdmsBuilder builder = IntroBuilder(options);
  builder.WithParallelism(2).WithOptions(options);
  Pdms reordered = builder.Build().value();
  EXPECT_EQ(reordered.options().parallelism, 2u);
}

TEST(BuilderValidationTest, NegativeValueErrorBudgetIsRejected) {
  EngineOptions options;
  const Result<Pdms> built =
      IntroBuilder(options).WithValueErrorBudget(-0.5).Build();
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(QuantizedValueTest, QuantizedRunsAreParallelDeterministicToo) {
  // The precision ratchet is per-link peer-local state updated inside
  // ComputeRound, so quantized runs keep the bitwise parallel-determinism
  // guarantee — including under loss, where the coarse early bundles are
  // exactly what gets dropped.
  for (const double send_probability : {1.0, 0.6}) {
    const std::vector<double> serial =
        ConvergedPosteriorsOn(1, send_probability, nullptr, 1e-3);
    ASSERT_FALSE(serial.empty());
    for (const size_t parallelism : {2, 8}) {
      const std::vector<double> parallel =
          ConvergedPosteriorsOn(parallelism, send_probability, nullptr, 1e-3);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(parallel[i], serial[i])
            << "posterior " << i << " at parallelism " << parallelism
            << ", P(send)=" << send_probability;
      }
    }
  }
}

TEST(QuantizedValueTest, ConvergedPosteriorsStayWithinTheErrorBudget) {
  // The whole point of the explicit budget: against the exact raw-double
  // run, every converged posterior of the quantized run is within eps.
  constexpr double kBudget = 1e-3;
  const std::vector<double> exact = ConvergedPosteriorsOn(1, 1.0, nullptr);
  const std::vector<double> quantized =
      ConvergedPosteriorsOn(1, 1.0, nullptr, kBudget);
  ASSERT_EQ(quantized.size(), exact.size());
  double worst = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    worst = std::max(worst, std::abs(quantized[i] - exact[i]));
  }
  EXPECT_LE(worst, kBudget);
}

// --- Byzantine resilience -----------------------------------------------------

TEST(BuilderValidationTest, MalformedByzantineGuardIsRejected) {
  auto build_with = [](ByzantineGuardOptions guard) {
    return IntroBuilder(EngineOptions{}).WithByzantineGuard(guard).Build();
  };
  ByzantineGuardOptions guard;
  guard.score_decay = 1.0;  // decay must stay below 1 or scores never fade
  EXPECT_EQ(build_with(guard).status().code(), StatusCode::kInvalidArgument);
  guard = ByzantineGuardOptions{};
  guard.hard_threshold = guard.soft_threshold / 2.0;  // hard below soft
  EXPECT_EQ(build_with(guard).status().code(), StatusCode::kInvalidArgument);
  guard = ByzantineGuardOptions{};
  guard.admission_weight = -1.0;
  EXPECT_EQ(build_with(guard).status().code(), StatusCode::kInvalidArgument);
  guard = ByzantineGuardOptions{};
  guard.outlier_ratio = 1.0;  // must exceed 1 or every clean link is an outlier
  EXPECT_EQ(build_with(guard).status().code(), StatusCode::kInvalidArgument);
  guard = ByzantineGuardOptions{};
  guard.soft_damping = 1.0;
  EXPECT_EQ(build_with(guard).status().code(), StatusCode::kInvalidArgument);
  // The defaults themselves must build.
  guard = ByzantineGuardOptions{};
  guard.enabled = true;
  EXPECT_TRUE(build_with(guard).ok());
}

TEST(BuilderValidationTest, ByzantinePlanValidatesRatesAndAdversaryRange) {
  ByzantinePlan plan;
  plan.adversaries = {0};
  plan.lie_probability = 1.5;
  EXPECT_EQ(IntroBuilder(EngineOptions{})
                .WithByzantinePlan(plan)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  plan.lie_probability = 0.5;
  plan.adversaries = {99};  // the intro network has 4 peers
  EXPECT_EQ(IntroBuilder(EngineOptions{})
                .WithByzantinePlan(plan)
                .Build()
                .status()
                .code(),
            StatusCode::kOutOfRange);
  // An unsorted, duplicated list is canonicalized, not rejected —
  // IsAdversary binary searches, so order matters downstream.
  plan.adversaries = {2, 0, 2};
  Pdms pdms =
      IntroBuilder(EngineOptions{}).WithByzantinePlan(plan).Build().value();
  EXPECT_EQ(pdms.options().byzantine.adversaries,
            (std::vector<PeerId>{0, 2}));
}

TEST(ByzantineGuardTest, GuardedAdversarialRunsAreParallelDeterministic) {
  // The guard's decisions are pure functions of peer-local slot history
  // and the chaos draws key on (seed, round, factor, position) — neither
  // depends on worker scheduling, so a guarded run under active
  // adversaries stays bitwise parallel-deterministic, lossy wire included.
  const auto arm = [](PdmsBuilder& builder) {
    ByzantineGuardOptions guard;
    guard.enabled = true;
    ByzantinePlan plan;
    plan.seed = 41;
    plan.lie_probability = 0.3;
    plan.invert_values = true;
    plan.equivocate_rate = 0.1;
    plan.adversaries = {1, 5};
    builder.WithByzantineGuard(guard).WithByzantinePlan(plan);
  };
  for (const double send_probability : {1.0, 0.6}) {
    const std::vector<double> serial =
        ConvergedPosteriorsOn(1, send_probability, nullptr, 0.0, arm);
    ASSERT_FALSE(serial.empty());
    for (const size_t parallelism : {2, 4}) {
      const std::vector<double> parallel =
          ConvergedPosteriorsOn(parallelism, send_probability, nullptr, 0.0,
                                arm);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(parallel[i], serial[i])
            << "posterior " << i << " at parallelism " << parallelism
            << ", P(send)=" << send_probability;
      }
    }
  }
}

TEST(ByzantineGuardTest, ColludingNeighborsAreBothDemoted) {
  // Two colluding adversaries forge the SAME values toward every shared
  // honest neighbor — mutual corroboration that would defeat naive
  // single-link outlier checks. The guard still demotes both: admission
  // violations, equivocation and flip detection are per-link, and the
  // influence-outlier median only trusts clean links.
  constexpr size_t kNetAttrs = 6;
  Rng rng(123);
  Digraph graph = topology::BarabasiAlbert(24, 2, &rng);
  topology::Symmetrize(&graph);
  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = kNetAttrs;
  const SyntheticPdms synthetic =
      BuildSyntheticPdms(graph, network_options, &rng);
  EngineOptions options;
  options.probe_ttl = 3;
  options.closure_limits.min_cycle_length = 2;
  options.closure_limits.max_cycle_length = 3;
  ByzantineGuardOptions guard;
  guard.enabled = true;
  ByzantinePlan plan;
  plan.seed = 9;
  plan.lie_probability = 0.6;
  plan.invert_values = true;
  plan.equivocate_rate = 0.3;
  plan.collude = true;
  plan.adversaries = {1, 2};  // early BA nodes: well-connected hubs
  PdmsBuilder builder = PdmsBuilder::FromSynthetic(synthetic);
  builder.WithOptions(options)
      .WithByzantineGuard(guard)
      .WithByzantinePlan(plan);
  Pdms pdms = builder.Build().value();
  ASSERT_GT(pdms.session().Discover(), 0u);
  pdms.session().Converge(60);

  bool adversary1_demoted = false;
  bool adversary2_demoted = false;
  size_t honest_links = 0;
  size_t honest_demoted = 0;
  for (PeerId p = 0; p < pdms.peer_count(); ++p) {
    if (plan.IsAdversary(p)) continue;  // only honest receivers' verdicts
    for (const Peer::GuardLinkView& view : pdms.engine().peer(p).GuardViews()) {
      if (view.peer == 1) {
        adversary1_demoted = adversary1_demoted || view.demote_level >= 1;
      } else if (view.peer == 2) {
        adversary2_demoted = adversary2_demoted || view.demote_level >= 1;
      } else {
        ++honest_links;
        if (view.demote_level >= 1) ++honest_demoted;
      }
    }
  }
  EXPECT_TRUE(adversary1_demoted);
  EXPECT_TRUE(adversary2_demoted);
  EXPECT_GT(pdms.engine().GuardRejectedBeliefs(), 0u);
  // Collateral damage stays bounded: honest peers downstream of the liars
  // legitimately oscillate secondhand until demotion cuts the poison off,
  // but demotions must concentrate on the adversaries' own links.
  ASSERT_GT(honest_links, 0u);
  EXPECT_LT(honest_demoted * 10, honest_links)
      << honest_demoted << " of " << honest_links
      << " honest links demoted";

  // The identical guarded network with no adversaries is a clean run:
  // zero rejections, zero demotions — no false positives.
  PdmsBuilder clean_builder = PdmsBuilder::FromSynthetic(synthetic);
  clean_builder.WithOptions(options).WithByzantineGuard(guard);
  Pdms clean = clean_builder.Build().value();
  ASSERT_GT(clean.session().Discover(), 0u);
  clean.session().Converge(60);
  EXPECT_EQ(clean.engine().GuardRejectedBeliefs(), 0u);
  EXPECT_EQ(clean.engine().GuardDemotedLinks(), 0u);
}

TEST(ByzantineGuardTest, GuardOffRunsIgnoreThePlanKnobsBitwise) {
  // With the guard disabled and no plan armed, setting the (default,
  // disabled) knobs explicitly must not perturb posteriors at all.
  const std::vector<double> baseline = ConvergedPosteriors(1, 1.0);
  const std::vector<double> with_knobs = ConvergedPosteriorsOn(
      1, 1.0, nullptr, 0.0, [](PdmsBuilder& builder) {
        builder.WithByzantineGuard(ByzantineGuardOptions{})
            .WithByzantinePlan(ByzantinePlan{});
      });
  ASSERT_EQ(with_knobs.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    ASSERT_EQ(with_knobs[i], baseline[i]) << "posterior " << i;
  }
}

// --- Session observers --------------------------------------------------------

class CountingObserver final : public RoundObserver {
 public:
  void OnRound(size_t round, const RoundReport& report,
               const Session& session) override {
    ++calls;
    last_round = round;
    last_change = report.max_posterior_change;
    last_m24 = session.Posterior(4, 0);
  }
  size_t calls = 0;
  size_t last_round = 0;
  double last_change = -1.0;
  double last_m24 = -1.0;
};

TEST(SessionObserverTest, FiresOncePerRoundAcrossStepAndConverge) {
  Pdms pdms = IntroBuilder(EngineOptions{}).Build().value();
  Session& session = pdms.session();
  session.Discover();
  CountingObserver observer;
  session.AddObserver(&observer);
  session.Step();
  EXPECT_EQ(observer.calls, 1u);
  EXPECT_EQ(observer.last_round, 1u);
  const ConvergenceReport report = session.Converge(100);
  EXPECT_EQ(observer.calls, 1u + report.rounds);
  EXPECT_EQ(observer.last_round, session.rounds());
  EXPECT_GE(observer.last_change, 0.0);
  EXPECT_LT(observer.last_m24, 0.45);  // sees through the session surface
}

class SelfRemovingObserver final : public RoundObserver {
 public:
  explicit SelfRemovingObserver(Session* session) : session_(session) {}
  void OnRound(size_t, const RoundReport&, const Session&) override {
    ++calls;
    session_->RemoveObserver(this);  // mutates the list mid-notification
  }
  Session* session_;
  size_t calls = 0;
};

TEST(SessionObserverTest, ObserverMayRemoveItselfDuringNotification) {
  Pdms pdms = IntroBuilder(EngineOptions{}).Build().value();
  Session& session = pdms.session();
  session.Discover();
  SelfRemovingObserver first(&session);
  CountingObserver second;
  session.AddObserver(&first);
  session.AddObserver(&second);
  const ConvergenceReport report = session.Converge(20);
  ASSERT_GT(report.rounds, 1u);
  EXPECT_EQ(first.calls, 1u);              // removal took effect next round
  EXPECT_EQ(second.calls, report.rounds);  // later observers still notified
}

TEST(SessionObserverTest, IndependentSessionsHaveIndependentObservers) {
  Pdms pdms = IntroBuilder(EngineOptions{}).Build().value();
  pdms.session().Discover();
  Session other = pdms.NewSession();
  CountingObserver on_default;
  CountingObserver on_other;
  pdms.session().AddObserver(&on_default);
  other.AddObserver(&on_other);
  pdms.session().Step();
  EXPECT_EQ(on_default.calls, 1u);
  EXPECT_EQ(on_other.calls, 0u);
  other.Step();
  EXPECT_EQ(on_default.calls, 1u);
  EXPECT_EQ(on_other.calls, 1u);
}

// --- Result<T> utilities ------------------------------------------------------

Result<std::string> EchoOrFail(bool fail) {
  if (fail) return Status::NotFound("no echo");
  return std::string("echo");
}

Status UsesAssignOrReturn(bool fail, std::string* out) {
  PDMS_ASSIGN_OR_RETURN(*out, EchoOrFail(fail));
  return Status::Ok();
}

Result<size_t> ChainsAssignOrReturn(bool fail) {
  PDMS_ASSIGN_OR_RETURN(const std::string echoed, EchoOrFail(fail));
  return echoed.size();
}

TEST(ResultTest, AssignOrReturnPropagatesAndAssigns) {
  std::string out;
  EXPECT_TRUE(UsesAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, "echo");
  const Status failed = UsesAssignOrReturn(true, &out);
  EXPECT_EQ(failed.code(), StatusCode::kNotFound);

  Result<size_t> chained = ChainsAssignOrReturn(false);
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(*chained, 4u);
  EXPECT_EQ(ChainsAssignOrReturn(true).status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrOnRvalueMovesOutTheValue) {
  auto make = [](bool fail) -> Result<std::unique_ptr<int>> {
    if (fail) return Status::Internal("boom");
    return std::make_unique<int>(41);
  };
  // move-only payloads work through the rvalue overload...
  std::unique_ptr<int> value = make(false).value_or(nullptr);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 41);
  // ...and the fallback path of a failed result never touches the
  // disengaged optional.
  std::unique_ptr<int> fallback = make(true).value_or(std::make_unique<int>(7));
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(*fallback, 7);
}

TEST(ResultTest, CopyOfFailedResultStaysFailed) {
  const Result<std::string> failed = Status::Unavailable("down");
  const Result<std::string> copy = failed;  // must not touch the value slot
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(copy.value_or("fallback"), "fallback");
}

}  // namespace
}  // namespace pdms
