// Tests for UndoSession: RAII rollback restores engine state bitwise,
// Commit keeps mutations, sessions nest in reverse order, move semantics
// transfer the armed rollback, and a multi-step mutation that fails
// mid-way rolls back atomically.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "mapping/mapping_generator.h"
#include "pdms/pdms.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

constexpr size_t kAttrs = 11;

Schema MakeSchema(const std::string& name, size_t attrs = kAttrs) {
  Schema schema(name);
  for (size_t a = 0; a < attrs; ++a) {
    EXPECT_TRUE(schema.AddAttribute(name + "_a" + std::to_string(a)).ok());
  }
  return schema;
}

/// The intro example (Figure 4) through the public builder; m24 (EdgeId 4)
/// garbles attribute 0.
Pdms MakeIntroPdms(EngineOptions options = {}, uint64_t seed = 17) {
  Rng rng(seed);
  options.probe_ttl = 5;
  PdmsBuilder builder;
  builder.WithOptions(options).WithInstantTransport();
  for (int p = 0; p < 4; ++p) {
    builder.AddPeer(MakeSchema(StrFormat("p%d", p + 1)));
  }
  const std::vector<std::pair<PeerId, PeerId>> links = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}};
  for (EdgeId e = 0; e < links.size(); ++e) {
    const std::vector<AttributeId> wrong =
        e == 4 ? std::vector<AttributeId>{0} : std::vector<AttributeId>{};
    builder.AddMapping(
        links[e].first, links[e].second,
        MakeConceptMapping(StrFormat("m%u", e), kAttrs, wrong, &rng));
  }
  Result<Pdms> built = builder.Build();
  EXPECT_TRUE(built.ok()) << built.status().message();
  return std::move(built).value();
}

/// Posteriors of every (live edge, attribute), in a fixed order — the
/// observable state the sessions must restore bitwise.
std::vector<double> AllPosteriors(const Pdms& pdms) {
  std::vector<double> posteriors;
  for (EdgeId e : pdms.graph().LiveEdges()) {
    for (AttributeId a = 0; a < kAttrs; ++a) {
      posteriors.push_back(pdms.Posterior(e, a));
    }
  }
  return posteriors;
}

FeedbackAnnouncement NegativeCycleFeedback() {
  FeedbackAnnouncement announcement;
  announcement.closure.kind = Closure::Kind::kCycle;
  announcement.closure.edges = {0, 1, 2, 3};
  announcement.closure.split = 4;
  announcement.closure.source = 0;
  announcement.closure.sink = 0;
  announcement.delta = 0.1;
  announcement.feedback = {{1,
                            FeedbackSign::kNegative,
                            {{0, 1}, {1, 1}, {2, 1}, {3, 1}}}};
  return announcement;
}

TEST(UndoSessionTest, RollbackRestoresPosteriorsBitwise) {
  Pdms pdms = MakeIntroPdms();
  pdms.session().Discover();
  pdms.session().Converge(25);
  const std::vector<double> baseline = AllPosteriors(pdms);
  const size_t live_edges = pdms.graph().LiveEdges().size();

  {
    UndoSession undo = pdms.StartUndoSession();
    EXPECT_TRUE(undo.armed());
    ASSERT_TRUE(pdms.RemoveMapping(4).ok());
    pdms.InjectFeedback(NegativeCycleFeedback());
    pdms.session().Converge(10);
    EXPECT_NE(AllPosteriors(pdms), baseline);
    EXPECT_EQ(pdms.graph().LiveEdges().size(), live_edges - 1);
    // Session leaves scope un-committed: everything rolls back.
  }

  EXPECT_EQ(pdms.graph().LiveEdges().size(), live_edges);
  EXPECT_EQ(AllPosteriors(pdms), baseline);
  // The restored engine keeps running as if nothing happened.
  pdms.session().Step();
}

TEST(UndoSessionTest, CommitKeepsMutations) {
  Pdms pdms = MakeIntroPdms();
  pdms.session().Discover();
  pdms.session().Converge(25);
  const std::vector<double> baseline = AllPosteriors(pdms);

  std::vector<double> mutated;
  {
    UndoSession undo = pdms.StartUndoSession();
    ASSERT_TRUE(pdms.RemoveMapping(4).ok());
    pdms.session().Converge(10);
    mutated = AllPosteriors(pdms);
    undo.Commit();
    EXPECT_FALSE(undo.armed());
  }

  EXPECT_NE(mutated, baseline);
  EXPECT_EQ(AllPosteriors(pdms), mutated);
}

TEST(UndoSessionTest, NestedSessionsRollBackInReverseOrder) {
  Pdms pdms = MakeIntroPdms();
  pdms.session().Discover();
  pdms.session().Converge(25);
  const std::vector<double> baseline = AllPosteriors(pdms);

  UndoSession outer = pdms.StartUndoSession();
  ASSERT_TRUE(pdms.RemoveMapping(4).ok());
  pdms.session().Converge(5);
  const std::vector<double> after_outer = AllPosteriors(pdms);

  {
    UndoSession inner = pdms.StartUndoSession();
    ASSERT_TRUE(pdms.RemoveMapping(0).ok());
    pdms.session().Converge(5);
    EXPECT_NE(AllPosteriors(pdms), after_outer);
    // Inner rolls back first...
  }
  EXPECT_EQ(AllPosteriors(pdms), after_outer);

  // ...then the outer session unwinds to the original state.
  outer.Rollback();
  EXPECT_FALSE(outer.armed());
  EXPECT_EQ(AllPosteriors(pdms), baseline);
}

TEST(UndoSessionTest, MoveTransfersTheArmedRollback) {
  Pdms pdms = MakeIntroPdms();
  pdms.session().Discover();
  pdms.session().Converge(25);
  const std::vector<double> baseline = AllPosteriors(pdms);

  UndoSession first = pdms.StartUndoSession();
  ASSERT_TRUE(pdms.RemoveMapping(0).ok());

  UndoSession second = std::move(first);
  EXPECT_FALSE(first.armed());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(second.armed());

  {
    UndoSession third = std::move(second);
    EXPECT_TRUE(third.armed());
    // `third` now owns the rollback and fires it on scope exit.
  }
  EXPECT_EQ(AllPosteriors(pdms), baseline);
}

TEST(UndoSessionTest, FailedMultiStepMutationRollsBackAtomically) {
  Pdms pdms = MakeIntroPdms();
  pdms.session().Discover();
  pdms.session().Converge(25);
  const std::vector<double> baseline = AllPosteriors(pdms);

  // A batch of mutations where a later step fails: the session guarantees
  // the earlier steps do not survive partially applied.
  const auto apply_batch = [&pdms]() -> Status {
    UndoSession undo = pdms.StartUndoSession();
    pdms.InjectFeedback(NegativeCycleFeedback());
    PDMS_RETURN_IF_ERROR(pdms.RemoveMapping(2));
    PDMS_RETURN_IF_ERROR(pdms.RemoveMapping(2));  // already removed: fails
    undo.Commit();
    return Status::Ok();
  };

  const Status status = apply_batch();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(AllPosteriors(pdms), baseline);
  EXPECT_EQ(pdms.graph().LiveEdges().size(), 5u);
}

TEST(UndoSessionTest, RollbackCoversDiscoveryState) {
  // A session opened before discovery restores the pre-discovery world:
  // replicas vanish, and a second discovery finds the same factors.
  Pdms pdms = MakeIntroPdms();

  size_t discovered = 0;
  {
    UndoSession undo = pdms.StartUndoSession();
    discovered = pdms.session().Discover();
    EXPECT_GT(discovered, 0u);
    EXPECT_GT(pdms.peer(1).replica_count(), 0u);
  }
  EXPECT_EQ(pdms.peer(1).replica_count(), 0u);

  EXPECT_EQ(pdms.session().Discover(), discovered);
  pdms.session().Converge(10);
}

}  // namespace
}  // namespace pdms
