#include <gtest/gtest.h>

#include "query/document_store.h"
#include "query/query.h"

namespace pdms {
namespace {

Schema ArtSchema() {
  Schema schema("art");
  EXPECT_TRUE(schema.AddAttribute("creator").ok());   // 0
  EXPECT_TRUE(schema.AddAttribute("keywords").ok());  // 1
  EXPECT_TRUE(schema.AddAttribute("created").ok());   // 2
  return schema;
}

TEST(QueryTest, BuildAndInspect) {
  Query query("q1");
  query.AddProjection(0);
  query.AddSelection(1, "river");
  EXPECT_EQ(query.operations().size(), 2u);
  EXPECT_EQ(query.Attributes(), (std::vector<AttributeId>{0, 1}));
  const Schema schema = ArtSchema();
  EXPECT_NE(query.ToString(&schema).find("creator"), std::string::npos);
  EXPECT_NE(query.ToString(&schema).find("river"), std::string::npos);
}

TEST(QueryTest, AttributesAreDeduplicated) {
  Query query("q");
  query.AddProjection(3);
  query.AddSelection(3, "x");
  query.AddSelection(1, "y");
  EXPECT_EQ(query.Attributes(), (std::vector<AttributeId>{1, 3}));
}

TEST(QueryTest, TranslateRewritesAttributes) {
  Query query("q");
  query.AddProjection(0);
  query.AddSelection(1, "river");
  SchemaMapping mapping("m", 3);
  ASSERT_TRUE(mapping.Set(0, 2).ok());
  ASSERT_TRUE(mapping.Set(1, 1).ok());
  Result<Query> translated = query.Translate(mapping);
  ASSERT_TRUE(translated.ok());
  EXPECT_EQ(translated->operations()[0].attribute, 2u);
  EXPECT_EQ(translated->operations()[1].attribute, 1u);
  EXPECT_EQ(translated->operations()[1].literal, "river");
}

TEST(QueryTest, TranslateFailsOnBottom) {
  Query query("q");
  query.AddProjection(0);
  SchemaMapping mapping("m", 3);  // attribute 0 unmapped
  EXPECT_EQ(query.Translate(mapping).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ParserTest, SelectOnly) {
  const Schema schema = ArtSchema();
  Result<Query> query = ParseQuery("SELECT creator", schema);
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->operations().size(), 1u);
  EXPECT_EQ(query->operations()[0].kind, OpKind::kProjection);
  EXPECT_EQ(query->operations()[0].attribute, 0u);
}

TEST(ParserTest, SelectMultipleWithWhere) {
  const Schema schema = ArtSchema();
  Result<Query> query = ParseQuery(
      "SELECT creator, created WHERE keywords LIKE \"river\" AND creator "
      "LIKE \"Robi\"",
      schema);
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->operations().size(), 4u);
  EXPECT_EQ(query->operations()[2].kind, OpKind::kSelection);
  EXPECT_EQ(query->operations()[2].literal, "river");
  EXPECT_EQ(query->operations()[3].literal, "Robi");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  const Schema schema = ArtSchema();
  EXPECT_TRUE(ParseQuery("select creator where keywords like \"x\"", schema).ok());
}

TEST(ParserTest, Errors) {
  const Schema schema = ArtSchema();
  EXPECT_EQ(ParseQuery("creator", schema).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseQuery("SELECT", schema).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseQuery("SELECT nope", schema).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseQuery("SELECT creator,", schema).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseQuery("SELECT creator WHERE keywords \"x\"", schema)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseQuery("SELECT creator WHERE keywords LIKE \"x", schema)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DocumentStoreTest, InsertAndExecute) {
  DocumentStore store;
  store.Insert(1, {{0, "Henry Peach Robinson"}, {1, "river landscape"}});
  store.Insert(2, {{0, "Claude Monet"}, {1, "garden pond"}});
  store.Insert(3, {{0, "John Constable"}, {1, "river dedham"}});

  Query query("q");
  query.AddProjection(0);
  query.AddSelection(1, "river");
  const auto rows = store.Execute(query);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].values[0], "Henry Peach Robinson");
  EXPECT_EQ(rows[0].entity, 1u);
  EXPECT_EQ(rows[1].values[0], "John Constable");
}

TEST(DocumentStoreTest, MissingSelectionAttributeMeansNoMatch) {
  DocumentStore store;
  store.Insert(1, {{0, "value"}});
  Query query("q");
  query.AddProjection(0);
  query.AddSelection(5, "anything");
  EXPECT_TRUE(store.Execute(query).empty());
}

TEST(DocumentStoreTest, MissingProjectionRendersEmpty) {
  DocumentStore store;
  store.Insert(1, {{1, "river"}});
  Query query("q");
  query.AddProjection(0);
  query.AddSelection(1, "river");
  const auto rows = store.Execute(query);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values[0], "");
}

TEST(DocumentStoreTest, SelectionIsSubstringMatch) {
  DocumentStore store;
  store.Insert(1, {{0, "Robinson"}});
  Query query("q");
  query.AddProjection(0);
  query.AddSelection(0, "Robi");
  EXPECT_EQ(store.Execute(query).size(), 1u);
  Query miss("q2");
  miss.AddProjection(0);
  miss.AddSelection(0, "robi");  // case-sensitive LIKE
  EXPECT_TRUE(store.Execute(miss).empty());
}

TEST(DocumentStoreTest, ProjectionOnlyReturnsAllDocuments) {
  DocumentStore store;
  store.Insert(1, {{0, "a"}});
  store.Insert(2, {{0, "b"}});
  Query query("q");
  query.AddProjection(0);
  EXPECT_EQ(store.Execute(query).size(), 2u);
}

}  // namespace
}  // namespace pdms
