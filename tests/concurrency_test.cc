// Concurrency layer tests: the work-stealing ThreadPool the engine fans
// rounds out on, and the thread-safety contract of the bundled Transport
// implementations (sharded mailboxes, atomic stats). The transport tests
// are written to run meaningfully under ThreadSanitizer — CI builds this
// binary with -fsanitize=thread and any lock misuse fails the job.

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"
#include "net/socket_transport.h"
#include "pdms/transport.h"
#include "util/thread_pool.h"

namespace pdms {
namespace {

// --- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kItems = 10000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(0, kItems, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWritesToDistinctSlotsNeedNoSynchronization) {
  // The engine's usage pattern: each index owns its output slot.
  ThreadPool pool(3);
  std::vector<size_t> out(5000, 0);
  pool.ParallelFor(0, out.size(), [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(7, 8, [&](size_t i) {
    calls.fetch_add(1);
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(64);
  pool.ParallelFor(0, ran.size(), [&](size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
  bool submitted = false;
  pool.Submit([&] { submitted = true; });
  EXPECT_TRUE(submitted);  // inline execution, no thread to defer to
}

TEST(ThreadPoolTest, SubmitEventuallyRunsEveryTask) {
  ThreadPool pool(3);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (done.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyParallelFors) {
  ThreadPool pool(4);
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<int> values(257, 0);
    pool.ParallelFor(0, values.size(), [&](size_t i) { values[i] = 1; });
    EXPECT_EQ(std::accumulate(values.begin(), values.end(), 0),
              static_cast<int>(values.size()));
  }
}

// --- Transport thread-safety ---------------------------------------------------

struct TransportFactoryCase {
  const char* label;
  std::unique_ptr<Transport> (*make)(size_t peers);
};

class ConcurrentTransportTest
    : public ::testing::TestWithParam<TransportFactoryCase> {};

ProbeMessage SequencedProbe(PeerId from, uint32_t sequence) {
  ProbeMessage probe;
  probe.origin = from;
  probe.ttl = sequence;
  return probe;
}

TEST_P(ConcurrentTransportTest, ParallelSendersPreservePerSenderOrder) {
  constexpr size_t kPeers = 8;
  constexpr size_t kSenders = 4;
  constexpr uint32_t kPerSender = 500;
  auto transport = GetParam().make(kPeers);

  // Senders 0..3 concurrently fan sequenced probes out to all peers while
  // two drainer threads concurrently empty disjoint halves of the
  // mailboxes (allowed by the Transport contract). Probes are never
  // dropped by the default-lossy configurations, so every message must
  // come out exactly once, in per-sender order.
  std::vector<std::vector<std::vector<uint32_t>>> received(
      kPeers, std::vector<std::vector<uint32_t>>(kSenders));
  std::atomic<bool> stop{false};
  auto drain_range = [&](PeerId begin, PeerId end) {
    for (PeerId p = begin; p < end; ++p) {
      for (Envelope& envelope : transport->Drain(p)) {
        const auto& probe = std::get<ProbeMessage>(envelope.payload);
        received[p][probe.origin].push_back(probe.ttl);
      }
    }
  };
  std::thread drainer_low([&] {
    while (!stop.load(std::memory_order_acquire)) drain_range(0, kPeers / 2);
  });
  std::thread drainer_high([&] {
    while (!stop.load(std::memory_order_acquire)) {
      drain_range(kPeers / 2, kPeers);
    }
  });

  std::vector<std::thread> senders;
  for (size_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (uint32_t i = 0; i < kPerSender; ++i) {
        transport->Send(static_cast<PeerId>(s),
                        static_cast<PeerId>(i % kPeers), std::nullopt,
                        SequencedProbe(static_cast<PeerId>(s), i));
      }
    });
  }
  for (std::thread& sender : senders) sender.join();
  stop.store(true, std::memory_order_release);
  drainer_low.join();
  drainer_high.join();

  // Quiescent cleanup: advance past any delivery delay and drain the rest.
  for (int tick = 0; tick < 4; ++tick) transport->AdvanceTick();
  drain_range(0, kPeers);
  EXPECT_FALSE(transport->HasPendingMessages());

  size_t total = 0;
  for (PeerId p = 0; p < kPeers; ++p) {
    for (size_t s = 0; s < kSenders; ++s) {
      const std::vector<uint32_t>& sequence = received[p][s];
      total += sequence.size();
      for (size_t i = 1; i < sequence.size(); ++i) {
        ASSERT_LT(sequence[i - 1], sequence[i])
            << "per-sender FIFO violated at peer " << p << " sender " << s;
      }
    }
  }
  EXPECT_EQ(total, kSenders * kPerSender);
  const size_t probe = static_cast<size_t>(MessageKind::kProbe);
  EXPECT_EQ(transport->stats().sent[probe], kSenders * kPerSender);
  EXPECT_EQ(transport->stats().delivered[probe], kSenders * kPerSender);
  EXPECT_GT(transport->stats().bytes_sent, 0u);
}

TEST_P(ConcurrentTransportTest, ConcurrentSendsAccountEveryMessage) {
  constexpr size_t kPeers = 4;
  constexpr size_t kSenders = 8;
  constexpr size_t kPerSender = 1000;
  auto transport = GetParam().make(kPeers);
  std::vector<std::thread> senders;
  for (size_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (size_t i = 0; i < kPerSender; ++i) {
        BeliefMessage message;
        message.AddGroup(0, FactorId{0x1, 0x2}, {BeliefEntry{0, Belief::Unit()}});
        transport->Send(static_cast<PeerId>(s % kPeers),
                        static_cast<PeerId>((s + i) % kPeers), std::nullopt,
                        std::move(message));
      }
    });
  }
  for (std::thread& sender : senders) sender.join();
  for (int tick = 0; tick < 4; ++tick) transport->AdvanceTick();
  size_t drained = 0;
  for (PeerId p = 0; p < kPeers; ++p) drained += transport->Drain(p).size();
  EXPECT_FALSE(transport->HasPendingMessages());

  const size_t belief = static_cast<size_t>(MessageKind::kBelief);
  const TransportStats& stats = transport->stats();
  EXPECT_EQ(stats.sent[belief], kSenders * kPerSender);
  EXPECT_EQ(stats.delivered[belief] + stats.dropped[belief],
            kSenders * kPerSender);
  EXPECT_EQ(drained, stats.delivered[belief]);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, ConcurrentTransportTest,
    ::testing::Values(
        TransportFactoryCase{"instant",
                             [](size_t peers) -> std::unique_ptr<Transport> {
                               return std::make_unique<InstantTransport>(peers);
                             }},
        TransportFactoryCase{"sim",
                             [](size_t peers) -> std::unique_ptr<Transport> {
                               return std::make_unique<SimTransport>(
                                   peers, NetworkOptions{});
                             }},
        TransportFactoryCase{"sim_lossy",
                             [](size_t peers) -> std::unique_ptr<Transport> {
                               NetworkOptions options;
                               options.send_probability = 0.5;
                               options.seed = 11;
                               return std::make_unique<SimTransport>(peers,
                                                                     options);
                             }},
        TransportFactoryCase{"socket",
                             [](size_t peers) -> std::unique_ptr<Transport> {
                               auto transport =
                                   SocketTransport::CreateLoopback(peers);
                               EXPECT_NE(transport, nullptr);
                               return transport;
                             }}),
    [](const ::testing::TestParamInfo<TransportFactoryCase>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace pdms
