#include <gtest/gtest.h>

#include "graph/topology.h"
#include "mapping/mapping.h"
#include "mapping/mapping_generator.h"
#include "util/rng.h"

namespace pdms {
namespace {

TEST(SchemaMappingTest, SetAndApply) {
  SchemaMapping mapping("m", 3);
  EXPECT_EQ(mapping.DefinedCount(), 0u);
  ASSERT_TRUE(mapping.Set(0, 2).ok());
  ASSERT_TRUE(mapping.Set(1, std::nullopt).ok());
  EXPECT_EQ(mapping.Apply(0), std::optional<AttributeId>(2));
  EXPECT_EQ(mapping.Apply(1), std::nullopt);
  EXPECT_EQ(mapping.Apply(2), std::nullopt);  // never set
  EXPECT_EQ(mapping.Apply(99), std::nullopt);  // out of range is ⊥
  EXPECT_EQ(mapping.DefinedCount(), 1u);
  EXPECT_EQ(mapping.Set(99, 0).code(), StatusCode::kOutOfRange);
}

TEST(SchemaMappingTest, FromCorrespondences) {
  std::vector<Correspondence> correspondences{{0, 5, 0.9}, {2, 1, 0.7}};
  const SchemaMapping mapping =
      SchemaMapping::FromCorrespondences("m", 3, correspondences);
  EXPECT_EQ(mapping.Apply(0), std::optional<AttributeId>(5));
  EXPECT_EQ(mapping.Apply(1), std::nullopt);
  EXPECT_EQ(mapping.Apply(2), std::optional<AttributeId>(1));
}

TEST(SchemaMappingTest, CompositionFollowsChains) {
  SchemaMapping first("a", 3);
  ASSERT_TRUE(first.Set(0, 1).ok());
  ASSERT_TRUE(first.Set(1, 2).ok());
  SchemaMapping second("b", 3);
  ASSERT_TRUE(second.Set(1, 0).ok());
  ASSERT_TRUE(second.Set(2, 2).ok());
  const SchemaMapping composed = first.ComposeWith(second);
  EXPECT_EQ(composed.Apply(0), std::optional<AttributeId>(0));  // 0->1->0
  EXPECT_EQ(composed.Apply(1), std::optional<AttributeId>(2));  // 1->2->2
  EXPECT_EQ(composed.Apply(2), std::nullopt);                   // ⊥ propagates
}

TEST(SchemaMappingTest, ComposeChainMatchesPairwise) {
  Rng rng(77);
  const SchemaMapping a = MakeConceptMapping("a", 6, {1}, &rng);
  const SchemaMapping b = MakeConceptMapping("b", 6, {3}, &rng);
  const SchemaMapping c = MakeConceptMapping("c", 6, {}, &rng);
  Result<SchemaMapping> chained = SchemaMapping::ComposeChain({&a, &b, &c});
  ASSERT_TRUE(chained.ok());
  const SchemaMapping pairwise = a.ComposeWith(b).ComposeWith(c);
  for (AttributeId attr = 0; attr < 6; ++attr) {
    EXPECT_EQ(chained->Apply(attr), pairwise.Apply(attr));
  }
  EXPECT_FALSE(SchemaMapping::ComposeChain({}).ok());
}

TEST(FeedbackTest, CompareCycleSigns) {
  SchemaMapping closure("c", 3);
  ASSERT_TRUE(closure.Set(0, 0).ok());       // identity -> positive
  ASSERT_TRUE(closure.Set(1, 2).ok());       // garbled -> negative
  // attribute 2 unset -> ⊥ -> neutral
  EXPECT_EQ(CompareCycle(closure, 0), FeedbackSign::kPositive);
  EXPECT_EQ(CompareCycle(closure, 1), FeedbackSign::kNegative);
  EXPECT_EQ(CompareCycle(closure, 2), FeedbackSign::kNeutral);
}

TEST(FeedbackTest, CompareParallelSigns) {
  SchemaMapping path1("p1", 3);
  SchemaMapping path2("p2", 3);
  ASSERT_TRUE(path1.Set(0, 1).ok());
  ASSERT_TRUE(path2.Set(0, 1).ok());  // agree -> positive
  ASSERT_TRUE(path1.Set(1, 0).ok());
  ASSERT_TRUE(path2.Set(1, 2).ok());  // disagree -> negative
  ASSERT_TRUE(path1.Set(2, 2).ok());  // path2 ⊥ -> neutral
  EXPECT_EQ(CompareParallel(path1, path2, 0), FeedbackSign::kPositive);
  EXPECT_EQ(CompareParallel(path1, path2, 1), FeedbackSign::kNegative);
  EXPECT_EQ(CompareParallel(path1, path2, 2), FeedbackSign::kNeutral);
}

TEST(FeedbackTest, ErrorsCanCompensate) {
  // Two wrong mappings composing back to the identity: the ∆ case the
  // feedback factor's third regime models.
  SchemaMapping first("a", 2);
  ASSERT_TRUE(first.Set(0, 1).ok());
  ASSERT_TRUE(first.Set(1, 0).ok());
  const SchemaMapping composed = first.ComposeWith(first);
  EXPECT_EQ(CompareCycle(composed, 0), FeedbackSign::kPositive);
  EXPECT_EQ(CompareCycle(composed, 1), FeedbackSign::kPositive);
}

TEST(GeneratorTest, SyntheticPdmsShape) {
  Rng rng(42);
  const Digraph graph = topology::ExampleGraph(nullptr);
  MappingNetworkOptions options;
  options.attributes_per_schema = 8;
  options.error_rate = 0.0;
  const SyntheticPdms pdms = BuildSyntheticPdms(graph, options, &rng);
  EXPECT_EQ(pdms.schemas.size(), 4u);
  EXPECT_EQ(pdms.mappings.size(), 5u);
  for (const Schema& schema : pdms.schemas) EXPECT_EQ(schema.size(), 8u);
  EXPECT_EQ(pdms.CountErroneousEntries(), 0u);
  // With error_rate 0 every mapping is the identity on concepts.
  for (EdgeId e : pdms.graph.LiveEdges()) {
    for (AttributeId a = 0; a < 8; ++a) {
      EXPECT_EQ(pdms.mappings[e].Apply(a), std::optional<AttributeId>(a));
    }
  }
}

TEST(GeneratorTest, ErrorRateIsRespected) {
  Rng rng(7);
  Rng topo_rng(8);
  const Digraph graph = topology::ErdosRenyi(30, 0.15, &topo_rng);
  MappingNetworkOptions options;
  options.attributes_per_schema = 10;
  options.error_rate = 0.25;
  const SyntheticPdms pdms = BuildSyntheticPdms(graph, options, &rng);
  const size_t entries = graph.edge_count() * 10;
  const double observed =
      static_cast<double>(pdms.CountErroneousEntries()) /
      static_cast<double>(entries);
  EXPECT_NEAR(observed, 0.25, 0.06);
  // Ground truth is consistent: erroneous entries never map a to a.
  for (EdgeId e : pdms.graph.LiveEdges()) {
    for (AttributeId a = 0; a < 10; ++a) {
      if (!pdms.ground_truth[e][a]) {
        ASSERT_TRUE(pdms.mappings[e].Apply(a).has_value());
        EXPECT_NE(*pdms.mappings[e].Apply(a), a);
      }
    }
  }
}

TEST(GeneratorTest, NullRateProducesBottoms) {
  Rng rng(11);
  const Digraph graph = topology::Ring(6);
  MappingNetworkOptions options;
  options.attributes_per_schema = 20;
  options.error_rate = 0.0;
  options.null_rate = 0.3;
  const SyntheticPdms pdms = BuildSyntheticPdms(graph, options, &rng);
  size_t nulls = 0;
  for (EdgeId e : pdms.graph.LiveEdges()) {
    nulls += 20 - pdms.mappings[e].DefinedCount();
  }
  const double observed =
      static_cast<double>(nulls) / static_cast<double>(6 * 20);
  EXPECT_NEAR(observed, 0.3, 0.1);
}

TEST(GeneratorTest, MakeConceptMappingControlsErrors) {
  Rng rng(3);
  const SchemaMapping mapping = MakeConceptMapping("m", 10, {2, 7}, &rng);
  for (AttributeId a = 0; a < 10; ++a) {
    ASSERT_TRUE(mapping.Apply(a).has_value());
    if (a == 2 || a == 7) {
      EXPECT_NE(*mapping.Apply(a), a);
    } else {
      EXPECT_EQ(*mapping.Apply(a), a);
    }
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  Rng rng_a(123);
  Rng rng_b(123);
  const Digraph graph = topology::Ring(5);
  MappingNetworkOptions options;
  options.error_rate = 0.4;
  const SyntheticPdms a = BuildSyntheticPdms(graph, options, &rng_a);
  const SyntheticPdms b = BuildSyntheticPdms(graph, options, &rng_b);
  for (EdgeId e : a.graph.LiveEdges()) {
    for (AttributeId attr = 0; attr < options.attributes_per_schema; ++attr) {
      EXPECT_EQ(a.mappings[e].Apply(attr), b.mappings[e].Apply(attr));
    }
  }
}

}  // namespace
}  // namespace pdms
