#include <gtest/gtest.h>

#include "net/message.h"
#include "net/network.h"

namespace pdms {
namespace {

BeliefMessage MakeBelief() {
  BeliefMessage message;
  message.AddGroup(0, FactorId{0x1, 0x2},
                   {BeliefEntry{0, Belief::FromProbability(0.7)}});
  return message;
}

TEST(MappingVarKeyTest, OrderingAndNaming) {
  const MappingVarKey a{1, 2};
  const MappingVarKey b{1, 3};
  const MappingVarKey c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.ToString(), "m(e1,a2)");
  const MappingVarKey coarse{4, MappingVarKey::kWholeMapping};
  EXPECT_EQ(coarse.ToString(), "m(e4)");
}

TEST(FactorIdTest, CanonicalAcrossEdgeOrderings) {
  // The fingerprint must depend on the edge *set*, not the order probes
  // happened to discover it in: any permutation yields the same id.
  Closure first;
  first.kind = Closure::Kind::kCycle;
  first.edges = {3, 1, 2};
  first.source = 1;
  first.sink = 1;
  Closure second = first;
  second.edges = {1, 2, 3};
  Closure third = first;
  third.edges = {2, 3, 1};
  EXPECT_EQ(FactorId::Make(first, 5), FactorId::Make(second, 5));
  EXPECT_EQ(FactorId::Make(first, 5), FactorId::Make(third, 5));
  EXPECT_NE(FactorId::Make(first, 5), FactorId::Make(second, 6));
}

TEST(FactorIdTest, DistinguishesRootAndKind) {
  Closure cycle;
  cycle.kind = Closure::Kind::kCycle;
  cycle.edges = {1, 2};
  cycle.source = 0;
  cycle.sink = 0;
  Closure other_root = cycle;
  other_root.source = 1;
  EXPECT_NE(FactorId::Make(cycle, 0), FactorId::Make(other_root, 0));

  Closure parallel = cycle;
  parallel.kind = Closure::Kind::kParallelPaths;
  parallel.split = 1;
  parallel.sink = 3;
  EXPECT_NE(FactorId::Make(cycle, 0), FactorId::Make(parallel, 0));
}

TEST(FactorIdTest, DistinguishesNearbyEdgeSets) {
  // Adjacent ids and swapped members must not alias: the two mixing lanes
  // have to avalanche on single-bit input differences.
  Closure base;
  base.kind = Closure::Kind::kCycle;
  base.edges = {10, 11};
  base.source = 0;
  base.sink = 0;
  Closure shifted = base;
  shifted.edges = {11, 12};
  Closure longer = base;
  longer.edges = {10, 11, 12};
  const FactorId a = FactorId::Make(base, 0);
  EXPECT_NE(a, FactorId::Make(shifted, 0));
  EXPECT_NE(a, FactorId::Make(longer, 0));
  EXPECT_FALSE(a.IsNil());
  // Identity hashing feeds `lo` straight into the hash table: the two
  // halves must differ from each other and across inputs.
  EXPECT_NE(a.hi, a.lo);
  EXPECT_NE(a.lo, FactorId::Make(shifted, 0).lo);
}

TEST(FactorIdTest, StableRendering) {
  Closure cycle;
  cycle.kind = Closure::Kind::kCycle;
  cycle.edges = {1, 2};
  cycle.source = 0;
  cycle.sink = 0;
  const FactorId id = FactorId::Make(cycle, 0);
  // Same content, same process-independent fingerprint: rendering is a
  // pure function of the two words.
  EXPECT_EQ(id.ToString(), FactorId::Make(cycle, 0).ToString());
  EXPECT_EQ(id.ToString().size(), 33u);  // 16 hex + ':' + 16 hex
}

TEST(VarintTest, WireSizeGrowsEverySevenBits) {
  EXPECT_EQ(VarintWireSize(0), 1u);
  EXPECT_EQ(VarintWireSize(127), 1u);
  EXPECT_EQ(VarintWireSize(128), 2u);
  EXPECT_EQ(VarintWireSize((1u << 14) - 1), 2u);
  EXPECT_EQ(VarintWireSize(1u << 14), 3u);
  EXPECT_EQ(VarintWireSize(~0ull), 10u);
}

TEST(AliasSessionTest, TxAssignsDenselyAndIdempotently) {
  AliasSessionTx tx;
  EXPECT_EQ(tx.Assign(FactorId{1, 1}), 0u);
  EXPECT_EQ(tx.Assign(FactorId{2, 2}), 1u);
  EXPECT_EQ(tx.Assign(FactorId{1, 1}), 0u);  // first mention wins
  EXPECT_EQ(tx.next_alias, 2u);
}

TEST(AliasSessionTest, RxBindingsAdvanceContiguousPrefixOverHoles) {
  AliasSessionRx rx;
  EXPECT_TRUE(rx.Bind(0, FactorId{1, 1}).ok());
  EXPECT_EQ(rx.known_prefix, 1u);
  // Alias 2 arrives before 1 (its binding bundle was dropped): the acked
  // prefix must not claim the hole.
  EXPECT_TRUE(rx.Bind(2, FactorId{3, 3}).ok());
  EXPECT_EQ(rx.known_prefix, 1u);
  EXPECT_TRUE(rx.Bind(1, FactorId{2, 2}).ok());
  EXPECT_EQ(rx.known_prefix, 3u);  // hole filled: prefix jumps past both

  // Idempotent re-declaration vs. conflicting rebind vs. absurd alias.
  EXPECT_TRUE(rx.Bind(1, FactorId{2, 2}).ok());
  EXPECT_EQ(rx.Bind(1, FactorId{9, 9}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rx.Bind(kMaxAliasesPerSession, FactorId{4, 4}).code(),
            StatusCode::kOutOfRange);

  // Resolution: bound aliases resolve, holes and out-of-range do not.
  ASSERT_TRUE(rx.Resolve(2).ok());
  EXPECT_EQ(*rx.Resolve(2), (FactorId{3, 3}));
  EXPECT_EQ(rx.Resolve(3).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rx.Resolve(99).status().code(), StatusCode::kNotFound);
}

TEST(BeliefWireFormatTest, BareAliasGroupsBeatTheFingerprintEncoding) {
  // Binding declaration (first mention): epoch(1) + ack(1) + #groups(1) +
  // alias token(1) + fingerprint(16) + #entries(1) + position(1) + 16.
  const BeliefMessage first = MakeBelief();
  EXPECT_EQ(ApproximateWireSize(Payload{first}), 38u);
  EXPECT_EQ(FactorIdWireBytes(Payload{first}), 16u);
  EXPECT_EQ(AliasWireBytes(Payload{first}), 5u);

  // Steady state (acked binding): the fingerprint is gone and the same
  // update costs 22 bytes against 34 under the pre-alias encoding — the
  // worst case (singleton group); multi-update groups amortize further.
  BeliefMessage steady;
  steady.AddGroup(0, FactorId{}, {BeliefEntry{0, Belief::FromProbability(0.7)}});
  EXPECT_EQ(ApproximateWireSize(Payload{steady}), 22u);
  EXPECT_EQ(FactorIdWireBytes(Payload{steady}), 0u);
  EXPECT_EQ(AliasWireBytes(Payload{steady}), 5u);

  // One alias header amortized over three delta-encoded entries.
  BeliefMessage grouped;
  grouped.AddGroup(3, FactorId{},
                   {BeliefEntry{0, Belief::Unit()}, BeliefEntry{1, Belief::Unit()},
                    BeliefEntry{2, Belief::Unit()}});
  EXPECT_EQ(ApproximateWireSize(Payload{grouped}), 3u + 2u + 3u * 17u);

  // The one-pass transport breakdown agrees with the per-metric functions.
  for (const BeliefMessage& message : {first, steady, grouped}) {
    const WireBreakdown breakdown = PayloadWireBreakdown(Payload{message});
    EXPECT_EQ(breakdown.bytes, ApproximateWireSize(Payload{message}));
    EXPECT_EQ(breakdown.key_bytes, FactorIdWireBytes(Payload{message}));
    EXPECT_EQ(breakdown.alias_bytes, AliasWireBytes(Payload{message}));
  }

  // Positions past the one-byte varint range cost exact zigzag-delta
  // varints (two bytes each here).
  BeliefMessage wide;
  wide.AddGroup(0, FactorId{},
                {BeliefEntry{64, Belief::Unit()}, BeliefEntry{200, Belief::Unit()}});
  EXPECT_EQ(ApproximateWireSize(Payload{wide}), 3u + 2u + (2u + 16u) + (2u + 16u));
}

TEST(SimTransportTest, DeliversAfterDelay) {
  NetworkOptions options;
  options.delay_ticks = 2;
  SimTransport network(3, options);
  network.Send(0, 1, std::nullopt, MakeBelief());
  EXPECT_TRUE(network.Drain(1).empty());  // tick 0
  network.AdvanceTick();
  EXPECT_TRUE(network.Drain(1).empty());  // tick 1
  network.AdvanceTick();
  const auto due = network.Drain(1);      // tick 2
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].from, 0u);
  EXPECT_EQ(due[0].to, 1u);
  EXPECT_TRUE(std::holds_alternative<BeliefMessage>(due[0].payload));
  EXPECT_FALSE(network.HasPendingMessages());
}

TEST(SimTransportTest, FifoWithinPeer) {
  SimTransport network(2, NetworkOptions{});
  for (int i = 0; i < 5; ++i) {
    ProbeMessage probe;
    probe.origin = static_cast<PeerId>(i);
    network.Send(0, 1, std::nullopt, probe);
  }
  network.AdvanceTick();
  const auto due = network.Drain(1);
  ASSERT_EQ(due.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<ProbeMessage>(due[i].payload).origin,
              static_cast<PeerId>(i));
  }
}

TEST(SimTransportTest, LossDropsBeliefMessagesOnly) {
  NetworkOptions options;
  options.send_probability = 0.0;
  options.lose_belief_messages_only = true;
  options.seed = 5;
  SimTransport network(2, options);
  network.Send(0, 1, std::nullopt, MakeBelief());
  network.Send(0, 1, std::nullopt, ProbeMessage{});
  network.AdvanceTick();
  const auto due = network.Drain(1);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<ProbeMessage>(due[0].payload));
  EXPECT_EQ(network.stats().dropped[static_cast<size_t>(MessageKind::kBelief)],
            1u);
  // Byte accounting excludes dropped envelopes: only the probe's bytes
  // (and none of the belief bundle's fingerprint bytes) are recorded.
  EXPECT_EQ(network.stats().bytes_sent, ApproximateWireSize(ProbeMessage{}));
  EXPECT_EQ(network.stats().key_bytes_sent, 0u);
}

TEST(SimTransportTest, LossCanAffectAllTraffic) {
  NetworkOptions options;
  options.send_probability = 0.0;
  options.lose_belief_messages_only = false;
  SimTransport network(2, options);
  network.Send(0, 1, std::nullopt, ProbeMessage{});
  network.AdvanceTick();
  EXPECT_TRUE(network.Drain(1).empty());
}

TEST(SimTransportTest, LossRateIsApproximatelyRespected) {
  NetworkOptions options;
  options.send_probability = 0.3;
  options.seed = 77;
  SimTransport network(2, options);
  const int kMessages = 20000;
  for (int i = 0; i < kMessages; ++i) {
    network.Send(0, 1, std::nullopt, MakeBelief());
  }
  const double delivered_fraction =
      1.0 - static_cast<double>(
                network.stats().dropped[static_cast<size_t>(
                    MessageKind::kBelief)]) /
                kMessages;
  EXPECT_NEAR(delivered_fraction, 0.3, 0.02);
}

TEST(SimTransportTest, StatsCountPerKind) {
  SimTransport network(3, NetworkOptions{});
  network.Send(0, 1, std::nullopt, MakeBelief());
  network.Send(1, 2, std::nullopt, ProbeMessage{});
  network.Send(2, 0, std::nullopt, QueryMessage{});
  EXPECT_EQ(network.stats().TotalSent(), 3u);
  network.AdvanceTick();
  network.Drain(0);
  network.Drain(1);
  network.Drain(2);
  EXPECT_EQ(
      network.stats().delivered[static_cast<size_t>(MessageKind::kQuery)], 1u);
  EXPECT_NE(network.stats().ToString().find("belief"), std::string::npos);
}

TEST(SimTransportTest, DeterministicLossForSeed) {
  auto run = [] {
    NetworkOptions options;
    options.send_probability = 0.5;
    options.seed = 9;
    SimTransport network(2, options);
    std::vector<bool> delivered;
    for (int i = 0; i < 100; ++i) {
      network.Send(0, 1, std::nullopt, MakeBelief());
      network.AdvanceTick();
      delivered.push_back(!network.Drain(1).empty());
    }
    return delivered;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pdms
