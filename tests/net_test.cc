#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "net/codec.h"
#include "net/message.h"
#include "net/network.h"

namespace pdms {
namespace {

BeliefMessage MakeBelief() {
  BeliefMessage message;
  message.AddGroup(0, FactorId{0x1, 0x2},
                   {BeliefEntry{0, Belief::FromProbability(0.7)}});
  return message;
}

TEST(MappingVarKeyTest, OrderingAndNaming) {
  const MappingVarKey a{1, 2};
  const MappingVarKey b{1, 3};
  const MappingVarKey c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.ToString(), "m(e1,a2)");
  const MappingVarKey coarse{4, MappingVarKey::kWholeMapping};
  EXPECT_EQ(coarse.ToString(), "m(e4)");
}

TEST(FactorIdTest, CanonicalAcrossEdgeOrderings) {
  // The fingerprint must depend on the edge *set*, not the order probes
  // happened to discover it in: any permutation yields the same id.
  Closure first;
  first.kind = Closure::Kind::kCycle;
  first.edges = {3, 1, 2};
  first.source = 1;
  first.sink = 1;
  Closure second = first;
  second.edges = {1, 2, 3};
  Closure third = first;
  third.edges = {2, 3, 1};
  EXPECT_EQ(FactorId::Make(first, 5), FactorId::Make(second, 5));
  EXPECT_EQ(FactorId::Make(first, 5), FactorId::Make(third, 5));
  EXPECT_NE(FactorId::Make(first, 5), FactorId::Make(second, 6));
}

TEST(FactorIdTest, DistinguishesRootAndKind) {
  Closure cycle;
  cycle.kind = Closure::Kind::kCycle;
  cycle.edges = {1, 2};
  cycle.source = 0;
  cycle.sink = 0;
  Closure other_root = cycle;
  other_root.source = 1;
  EXPECT_NE(FactorId::Make(cycle, 0), FactorId::Make(other_root, 0));

  Closure parallel = cycle;
  parallel.kind = Closure::Kind::kParallelPaths;
  parallel.split = 1;
  parallel.sink = 3;
  EXPECT_NE(FactorId::Make(cycle, 0), FactorId::Make(parallel, 0));
}

TEST(FactorIdTest, DistinguishesNearbyEdgeSets) {
  // Adjacent ids and swapped members must not alias: the two mixing lanes
  // have to avalanche on single-bit input differences.
  Closure base;
  base.kind = Closure::Kind::kCycle;
  base.edges = {10, 11};
  base.source = 0;
  base.sink = 0;
  Closure shifted = base;
  shifted.edges = {11, 12};
  Closure longer = base;
  longer.edges = {10, 11, 12};
  const FactorId a = FactorId::Make(base, 0);
  EXPECT_NE(a, FactorId::Make(shifted, 0));
  EXPECT_NE(a, FactorId::Make(longer, 0));
  EXPECT_FALSE(a.IsNil());
  // Identity hashing feeds `lo` straight into the hash table: the two
  // halves must differ from each other and across inputs.
  EXPECT_NE(a.hi, a.lo);
  EXPECT_NE(a.lo, FactorId::Make(shifted, 0).lo);
}

TEST(FactorIdTest, StableRendering) {
  Closure cycle;
  cycle.kind = Closure::Kind::kCycle;
  cycle.edges = {1, 2};
  cycle.source = 0;
  cycle.sink = 0;
  const FactorId id = FactorId::Make(cycle, 0);
  // Same content, same process-independent fingerprint: rendering is a
  // pure function of the two words.
  EXPECT_EQ(id.ToString(), FactorId::Make(cycle, 0).ToString());
  EXPECT_EQ(id.ToString().size(), 33u);  // 16 hex + ':' + 16 hex
}

TEST(VarintTest, WireSizeGrowsEverySevenBits) {
  EXPECT_EQ(VarintWireSize(0), 1u);
  EXPECT_EQ(VarintWireSize(127), 1u);
  EXPECT_EQ(VarintWireSize(128), 2u);
  EXPECT_EQ(VarintWireSize((1u << 14) - 1), 2u);
  EXPECT_EQ(VarintWireSize(1u << 14), 3u);
  EXPECT_EQ(VarintWireSize(~0ull), 10u);
}

TEST(AliasSessionTest, TxAssignsDenselyAndIdempotently) {
  AliasSessionTx tx;
  EXPECT_EQ(tx.Assign(FactorId{1, 1}), 0u);
  EXPECT_EQ(tx.Assign(FactorId{2, 2}), 1u);
  EXPECT_EQ(tx.Assign(FactorId{1, 1}), 0u);  // first mention wins
  EXPECT_EQ(tx.next_alias, 2u);
}

TEST(AliasSessionTest, RxBindingsAdvanceContiguousPrefixOverHoles) {
  AliasSessionRx rx;
  EXPECT_TRUE(rx.Bind(0, FactorId{1, 1}).ok());
  EXPECT_EQ(rx.known_prefix, 1u);
  // Alias 2 arrives before 1 (its binding bundle was dropped): the acked
  // prefix must not claim the hole.
  EXPECT_TRUE(rx.Bind(2, FactorId{3, 3}).ok());
  EXPECT_EQ(rx.known_prefix, 1u);
  EXPECT_TRUE(rx.Bind(1, FactorId{2, 2}).ok());
  EXPECT_EQ(rx.known_prefix, 3u);  // hole filled: prefix jumps past both

  // Idempotent re-declaration vs. conflicting rebind vs. absurd alias.
  EXPECT_TRUE(rx.Bind(1, FactorId{2, 2}).ok());
  EXPECT_EQ(rx.Bind(1, FactorId{9, 9}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rx.Bind(kMaxAliasesPerSession, FactorId{4, 4}).code(),
            StatusCode::kOutOfRange);

  // Resolution: bound aliases resolve, holes and out-of-range do not.
  ASSERT_TRUE(rx.Resolve(2).ok());
  EXPECT_EQ(*rx.Resolve(2), (FactorId{3, 3}));
  EXPECT_EQ(rx.Resolve(3).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rx.Resolve(99).status().code(), StatusCode::kNotFound);
}

TEST(BeliefWireFormatTest, BareAliasGroupsBeatTheFingerprintEncoding) {
  // Binding declaration (first mention): epoch(1) + ack(1) + value
  // format(1) + #groups(1) + alias token(1) + fingerprint(16) +
  // #entries(1) + position(1) + 16.
  const BeliefMessage first = MakeBelief();
  EXPECT_EQ(ApproximateWireSize(Payload{first}), 39u);
  EXPECT_EQ(FactorIdWireBytes(Payload{first}), 16u);
  EXPECT_EQ(AliasWireBytes(Payload{first}), 6u);

  // Steady state (acked binding): the fingerprint is gone and the same
  // update costs 23 bytes against 34 under the pre-alias encoding — the
  // worst case (singleton group); multi-update groups amortize further.
  BeliefMessage steady;
  steady.AddGroup(0, FactorId{}, {BeliefEntry{0, Belief::FromProbability(0.7)}});
  EXPECT_EQ(ApproximateWireSize(Payload{steady}), 23u);
  EXPECT_EQ(FactorIdWireBytes(Payload{steady}), 0u);
  EXPECT_EQ(AliasWireBytes(Payload{steady}), 6u);

  // One alias header amortized over three delta-encoded entries.
  BeliefMessage grouped;
  grouped.AddGroup(3, FactorId{},
                   {BeliefEntry{0, Belief::Unit()}, BeliefEntry{1, Belief::Unit()},
                    BeliefEntry{2, Belief::Unit()}});
  EXPECT_EQ(ApproximateWireSize(Payload{grouped}), 4u + 2u + 3u * 17u);

  // The one-pass transport breakdown agrees with the per-metric functions.
  for (const BeliefMessage& message : {first, steady, grouped}) {
    const WireBreakdown breakdown = PayloadWireBreakdown(Payload{message});
    EXPECT_EQ(breakdown.bytes, ApproximateWireSize(Payload{message}));
    EXPECT_EQ(breakdown.key_bytes, FactorIdWireBytes(Payload{message}));
    EXPECT_EQ(breakdown.alias_bytes, AliasWireBytes(Payload{message}));
  }

  // Positions past the one-byte varint range cost exact zigzag-delta
  // varints (two bytes each here).
  BeliefMessage wide;
  wide.AddGroup(0, FactorId{},
                {BeliefEntry{64, Belief::Unit()}, BeliefEntry{200, Belief::Unit()}});
  EXPECT_EQ(ApproximateWireSize(Payload{wide}), 4u + 2u + (2u + 16u) + (2u + 16u));
}

// --- Quantized belief values ---------------------------------------------------

TEST(QuantizationTest, BudgetPicksEnoughFractionalBits) {
  EXPECT_EQ(ValueBitsForBudget(0.0), 0u);      // disabled
  EXPECT_EQ(ValueBitsForBudget(-1.0), 0u);     // nonsense disables too
  EXPECT_EQ(ValueBitsForBudget(2.0), 2u);      // floor
  EXPECT_EQ(ValueBitsForBudget(1e-3), 13u);    // ceil(log2(8000))
  EXPECT_EQ(ValueBitsForBudget(1e-15), 44u);   // ceiling
  // More budget never means more bits.
  uint32_t previous = kMaxValuePrecisionBits;
  for (double eps : {1e-12, 1e-9, 1e-6, 1e-3, 1e-1, 1.0}) {
    const uint32_t bits = ValueBitsForBudget(eps);
    EXPECT_LE(bits, previous) << "eps=" << eps;
    previous = bits;
  }
}

TEST(QuantizationTest, RoundTripStaysInsideTheBudgetAtEveryTier) {
  for (uint32_t bits : {2u, 8u, 13u, 20u, 44u}) {
    // A bits-tier quantum is 2^-bits wide in log-odds; the worst rounding
    // error is half a quantum, and d(prob)/d(log-odds) = p(1-p) <= 1/4,
    // so probabilities move by at most 2^-(bits+3).
    const double budget = std::ldexp(1.0, -static_cast<int>(bits) - 3);
    for (double p : {1e-6, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6}) {
      const Belief original = Belief::FromProbability(p);
      const int64_t quant = QuantizeLogOdds(original, bits);
      const Belief decoded = DequantizeLogOdds(quant, bits);
      EXPECT_NEAR(decoded.ProbabilityCorrect(), p, budget)
          << "bits=" << bits << " p=" << p;
      // Re-quantizing the dequantized belief is a fixed point: the value a
      // receiver absorbs re-encodes to the identical quantum (and bytes).
      EXPECT_EQ(QuantizeLogOdds(decoded, bits), quant);
    }
  }
}

TEST(QuantizationTest, CertaintySurvivesExactlyViaSentinels) {
  for (uint32_t bits : {2u, 13u, 44u}) {
    EXPECT_EQ(QuantizeLogOdds(Belief{1.0, 0.0}, bits), kQuantPosInf);
    EXPECT_EQ(QuantizeLogOdds(Belief{0.0, 1.0}, bits), kQuantNegInf);
    const Belief certain = DequantizeLogOdds(kQuantPosInf, bits);
    EXPECT_EQ(certain.correct, 1.0);
    EXPECT_EQ(certain.incorrect, 0.0);
    const Belief impossible = DequantizeLogOdds(kQuantNegInf, bits);
    EXPECT_EQ(impossible.correct, 0.0);
    EXPECT_EQ(impossible.incorrect, 1.0);
  }
  // The degenerate all-zero measure and NaN-producing inputs quantize to
  // the neutral quantum instead of poisoning the wire.
  EXPECT_EQ(QuantizeLogOdds(Belief{0.0, 0.0}, 8), 0);
}

TEST(QuantizationTest, WireTokensRoundTripIncludingSentinels) {
  EXPECT_EQ(QuantWireToken(kQuantPosInf), 0u);
  EXPECT_EQ(QuantWireToken(kQuantNegInf), 1u);
  EXPECT_EQ(QuantWireToken(0), 2u);  // zigzag(0) + 2
  for (int64_t quant : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1024},
                        int64_t{-1024}, QuantBound(44), -QuantBound(44),
                        kQuantPosInf, kQuantNegInf}) {
    EXPECT_EQ(QuantFromWireToken(QuantWireToken(quant)), quant);
  }
  // Saturated small-tier quanta stay one byte on the wire.
  EXPECT_EQ(VarintWireSize(QuantWireToken(0)), 1u);
}

TEST(SimTransportTest, DeliversAfterDelay) {
  NetworkOptions options;
  options.delay_ticks = 2;
  SimTransport network(3, options);
  network.Send(0, 1, std::nullopt, MakeBelief());
  EXPECT_TRUE(network.Drain(1).empty());  // tick 0
  network.AdvanceTick();
  EXPECT_TRUE(network.Drain(1).empty());  // tick 1
  network.AdvanceTick();
  const auto due = network.Drain(1);      // tick 2
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].from, 0u);
  EXPECT_EQ(due[0].to, 1u);
  EXPECT_TRUE(std::holds_alternative<BeliefMessage>(due[0].payload));
  EXPECT_FALSE(network.HasPendingMessages());
}

TEST(SimTransportTest, FifoWithinPeer) {
  SimTransport network(2, NetworkOptions{});
  for (int i = 0; i < 5; ++i) {
    ProbeMessage probe;
    probe.origin = static_cast<PeerId>(i);
    network.Send(0, 1, std::nullopt, probe);
  }
  network.AdvanceTick();
  const auto due = network.Drain(1);
  ASSERT_EQ(due.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<ProbeMessage>(due[i].payload).origin,
              static_cast<PeerId>(i));
  }
}

TEST(SimTransportTest, LossDropsBeliefMessagesOnly) {
  NetworkOptions options;
  options.send_probability = 0.0;
  options.lose_belief_messages_only = true;
  options.seed = 5;
  SimTransport network(2, options);
  network.Send(0, 1, std::nullopt, MakeBelief());
  network.Send(0, 1, std::nullopt, ProbeMessage{});
  network.AdvanceTick();
  const auto due = network.Drain(1);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<ProbeMessage>(due[0].payload));
  EXPECT_EQ(network.stats().dropped[static_cast<size_t>(MessageKind::kBelief)],
            1u);
  // Byte accounting excludes dropped envelopes: only the probe's bytes
  // (and none of the belief bundle's fingerprint bytes) are recorded.
  EXPECT_EQ(network.stats().bytes_sent, ApproximateWireSize(ProbeMessage{}));
  EXPECT_EQ(network.stats().key_bytes_sent, 0u);
}

TEST(SimTransportTest, LossCanAffectAllTraffic) {
  NetworkOptions options;
  options.send_probability = 0.0;
  options.lose_belief_messages_only = false;
  SimTransport network(2, options);
  network.Send(0, 1, std::nullopt, ProbeMessage{});
  network.AdvanceTick();
  EXPECT_TRUE(network.Drain(1).empty());
}

TEST(SimTransportTest, LossRateIsApproximatelyRespected) {
  NetworkOptions options;
  options.send_probability = 0.3;
  options.seed = 77;
  SimTransport network(2, options);
  const int kMessages = 20000;
  for (int i = 0; i < kMessages; ++i) {
    network.Send(0, 1, std::nullopt, MakeBelief());
  }
  const double delivered_fraction =
      1.0 - static_cast<double>(
                network.stats().dropped[static_cast<size_t>(
                    MessageKind::kBelief)]) /
                kMessages;
  EXPECT_NEAR(delivered_fraction, 0.3, 0.02);
}

TEST(SimTransportTest, StatsCountPerKind) {
  SimTransport network(3, NetworkOptions{});
  network.Send(0, 1, std::nullopt, MakeBelief());
  network.Send(1, 2, std::nullopt, ProbeMessage{});
  network.Send(2, 0, std::nullopt, QueryMessage{});
  EXPECT_EQ(network.stats().TotalSent(), 3u);
  network.AdvanceTick();
  network.Drain(0);
  network.Drain(1);
  network.Drain(2);
  EXPECT_EQ(
      network.stats().delivered[static_cast<size_t>(MessageKind::kQuery)], 1u);
  EXPECT_NE(network.stats().ToString().find("belief"), std::string::npos);
}

// --- Wire codec ---------------------------------------------------------------

std::vector<uint8_t> Encoded(const Payload& payload) {
  std::vector<uint8_t> bytes;
  EncodePayload(payload, &bytes);
  return bytes;
}

/// Encode -> decode -> re-encode must reproduce the identical bytes, and
/// the encoded size must equal the accounting the transports charge — the
/// acceptance criterion tying `PayloadWireBreakdown` to real bytes.
void ExpectRoundTrip(const Payload& payload) {
  const std::vector<uint8_t> bytes = Encoded(payload);
  EXPECT_EQ(bytes.size(), EncodedPayloadSize(payload));
  EXPECT_EQ(bytes.size(), PayloadWireBreakdown(payload).bytes);
  EXPECT_EQ(bytes.size(), ApproximateWireSize(payload));
  auto decoded = DecodePayload(KindOf(payload), bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(KindOf(*decoded), KindOf(payload));
  EXPECT_EQ(Encoded(*decoded), bytes) << "re-encode differs";
}

/// Every proper prefix of a valid encoding must be rejected (counts are
/// declared up front, so a prefix always truncates a promised field), and
/// so must trailing garbage.
void ExpectStrictFraming(const Payload& payload) {
  const std::vector<uint8_t> bytes = Encoded(payload);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto truncated =
        DecodePayload(KindOf(payload), std::span(bytes.data(), cut));
    EXPECT_FALSE(truncated.ok()) << "prefix of " << cut << " bytes accepted";
  }
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0x00);
  EXPECT_FALSE(DecodePayload(KindOf(payload), padded).ok())
      << "trailing byte accepted";
}

ProbeMessage MakeRichProbe() {
  ProbeMessage probe;
  probe.origin = 3;
  probe.ttl = 5;
  probe.route = {2, 7, 300};
  probe.trail.resize(2);
  probe.trail[0] = {AttributeId{1}, std::nullopt, AttributeId{4}};
  probe.trail[1] = {std::nullopt, AttributeId{0}, std::nullopt};
  return probe;
}

FeedbackAnnouncement MakeRichFeedback() {
  FeedbackAnnouncement message;
  message.closure.kind = Closure::Kind::kParallelPaths;
  message.closure.edges = {4, 9, 11};
  message.closure.split = 1;
  message.closure.source = 2;
  message.closure.sink = 6;
  message.delta = 0.125;
  AttributeFeedback positive;
  positive.root_attribute = 0;
  positive.sign = FeedbackSign::kPositive;
  positive.members = {{4, 0}, {9, 3}, {11, MappingVarKey::kWholeMapping}};
  AttributeFeedback negative;
  negative.root_attribute = 7;
  negative.sign = FeedbackSign::kNegative;
  negative.members = {{4, 7}};
  message.feedback = {positive, negative};
  return message;
}

QueryMessage MakeRichQuery() {
  QueryMessage message;
  message.query_id = 0x1122334455667788ull;
  message.origin = 1;
  message.ttl = 4;
  message.query = Query("q7");
  message.query.AddProjection(0);
  message.query.AddSelection(1, "river");
  message.visited = {0, 2, 5};
  message.piggyback = {
      BeliefUpdate{FactorId{0xdead, 0xbeef}, 3, Belief::FromProbability(0.9)}};
  return message;
}

TEST(CodecTest, EveryPayloadAlternativeRoundTripsByteIdentically) {
  ExpectRoundTrip(Payload{ProbeMessage{}});
  ExpectRoundTrip(Payload{MakeRichProbe()});
  ExpectRoundTrip(Payload{FeedbackAnnouncement{}});
  ExpectRoundTrip(Payload{MakeRichFeedback()});
  ExpectRoundTrip(Payload{BeliefMessage{}});
  ExpectRoundTrip(Payload{MakeBelief()});
  ExpectRoundTrip(Payload{QueryMessage{}});
  ExpectRoundTrip(Payload{MakeRichQuery()});

  // The belief shapes the exact-size test above pins down, plus a
  // multi-group bundle exercising alias deltas in both directions.
  BeliefMessage grouped;
  grouped.AddGroup(3, FactorId{},
                   {BeliefEntry{0, Belief::Unit()}, BeliefEntry{1, Belief::Unit()},
                    BeliefEntry{2, Belief::Unit()}});
  grouped.AddGroup(1, FactorId{0x5, 0x6}, {BeliefEntry{64, Belief::Unit()}});
  grouped.epoch = 2;
  grouped.ack = 130;
  ExpectRoundTrip(Payload{grouped});
}

TEST(CodecTest, EncodedSizeMatchesAccountingForAllKinds) {
  // The per-kind acceptance check: real encoded bytes == the breakdown the
  // transports charge (release builds included — this is the non-assert
  // form of the debug cross-check inside EncodePayload).
  for (const Payload& payload :
       {Payload{MakeRichProbe()}, Payload{MakeRichFeedback()},
        Payload{MakeBelief()}, Payload{MakeRichQuery()}}) {
    EXPECT_EQ(Encoded(payload).size(), PayloadWireBreakdown(payload).bytes)
        << MessageKindName(KindOf(payload));
  }
}

TEST(CodecTest, RejectsTruncationAndTrailingGarbageForAllKinds) {
  ExpectStrictFraming(Payload{MakeRichProbe()});
  ExpectStrictFraming(Payload{MakeRichFeedback()});
  ExpectStrictFraming(Payload{MakeBelief()});
  ExpectStrictFraming(Payload{MakeRichQuery()});
}

std::vector<uint8_t> RawVarints(std::initializer_list<uint64_t> values) {
  std::vector<uint8_t> bytes;
  for (uint64_t value : values) {
    while (value >= 0x80) {
      bytes.push_back(static_cast<uint8_t>(value) | 0x80);
      value >>= 7;
    }
    bytes.push_back(static_cast<uint8_t>(value));
  }
  return bytes;
}

TEST(CodecTest, RejectsMalformedVarints) {
  // 11 continuation bytes: longer than any 64-bit varint.
  std::vector<uint8_t> overlong(11, 0x80);
  EXPECT_FALSE(DecodePayload(MessageKind::kBelief, overlong).ok());
  // Ten bytes whose last carries bits beyond the 64th.
  std::vector<uint8_t> overflow(9, 0x80);
  overflow.push_back(0x7f);
  EXPECT_FALSE(DecodePayload(MessageKind::kBelief, overflow).ok());
  // Non-minimal encoding of 0 (0x80 0x00 instead of 0x00): decoding it
  // would re-encode to different bytes, so it is refused outright.
  const std::vector<uint8_t> non_minimal = {0x80, 0x00};
  EXPECT_FALSE(DecodePayload(MessageKind::kBelief, non_minimal).ok());
}

TEST(CodecTest, RejectsOutOfRangeBeliefAliases) {
  // epoch 0, ack 0, value format 0 (raw doubles), one group whose zigzag
  // alias delta lands exactly on the per-session bound.
  const uint64_t zigzag_bound = static_cast<uint64_t>(kMaxAliasesPerSession)
                                << 1;
  auto bytes = RawVarints({0, 0, 0, 1, zigzag_bound << 1, 0});
  const auto beyond = DecodePayload(MessageKind::kBelief, bytes);
  EXPECT_EQ(beyond.status().code(), StatusCode::kOutOfRange);

  // zigzag(-1) = 1: the first group would get alias -1.
  bytes = RawVarints({0, 0, 0, 1, (1ull << 1), 0});
  const auto negative = DecodePayload(MessageKind::kBelief, bytes);
  EXPECT_EQ(negative.status().code(), StatusCode::kOutOfRange);
}

TEST(CodecTest, RejectsCountsLargerThanTheInput) {
  // A probe claiming 2^20 route edges inside a 12-byte message must be
  // refused before any allocation happens.
  std::vector<uint8_t> bytes(8, 0x00);  // origin + ttl
  const auto count = RawVarints({1u << 20});
  bytes.insert(bytes.end(), count.begin(), count.end());
  const auto decoded = DecodePayload(MessageKind::kProbe, bytes);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // A belief group promising more 17-byte entries than bytes remain.
  auto belief = RawVarints({0, 0, 0, 1, 0, 1u << 16});
  EXPECT_EQ(DecodePayload(MessageKind::kBelief, belief).status().code(),
            StatusCode::kInvalidArgument);
}

BeliefMessage MakeQuantized(uint32_t bits) {
  BeliefMessage message;
  message.AddGroup(0, FactorId{},
                   {BeliefEntry{0, Belief::FromProbability(0.7)},
                    BeliefEntry{1, Belief{1.0, 0.0}},       // +inf sentinel
                    BeliefEntry{2, Belief{0.0, 1.0}},       // -inf sentinel
                    BeliefEntry{3, Belief{1.0, 1.0}}});     // log-odds 0
  message.AddGroup(2, FactorId{0xa, 0xb},
                   {BeliefEntry{64, Belief::FromProbability(1e-4)}});
  message.QuantizeValues(bits);
  return message;
}

TEST(CodecTest, QuantizedBundlesRoundTripByteIdenticallyAtEveryTier) {
  for (uint32_t bits : {2u, 8u, 13u, 20u, 44u}) {
    const BeliefMessage message = MakeQuantized(bits);
    ExpectRoundTrip(Payload{message});
    // The decoded beliefs are exactly the sender's post-quantization
    // realizations — the codec and QuantizeValues agree on dequantization.
    const auto decoded =
        DecodePayload(MessageKind::kBelief, Encoded(Payload{message}));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    const auto& bundle = std::get<BeliefMessage>(*decoded);
    ASSERT_EQ(bundle.entries.size(), message.entries.size());
    for (size_t i = 0; i < bundle.entries.size(); ++i) {
      EXPECT_EQ(bundle.entries[i].quant, message.entries[i].quant);
      EXPECT_EQ(bundle.entries[i].belief.correct,
                message.entries[i].belief.correct);
      EXPECT_EQ(bundle.entries[i].belief.incorrect,
                message.entries[i].belief.incorrect);
    }
    // Framing stays strict under the compact entries: every truncation and
    // any trailing byte is still rejected.
    ExpectStrictFraming(Payload{message});
  }
  // A saturated-workload singleton (log-odds 0) costs 2 bytes of entry
  // against 17 raw — the per-update win the 10k benchmark banks on.
  BeliefMessage steady;
  steady.AddGroup(0, FactorId{}, {BeliefEntry{0, Belief{1.0, 1.0}}});
  steady.QuantizeValues(13);
  EXPECT_EQ(ApproximateWireSize(Payload{steady}), 4u + 2u + 1u + 1u);
  EXPECT_EQ(PayloadWireBreakdown(Payload{steady}).value_bytes, 1u);
}

TEST(CodecTest, MixedPrecisionBundlesCoexistOnOneLink) {
  // Adjacent bundles may carry different per-bundle value formats (the
  // sender steps precision up mid-session); each decodes independently.
  for (uint32_t bits : {0u, 2u, 13u, 44u}) {
    BeliefMessage message = MakeBelief();
    message.QuantizeValues(bits);
    const auto decoded =
        DecodePayload(MessageKind::kBelief, Encoded(Payload{message}));
    ASSERT_TRUE(decoded.ok()) << "bits=" << bits << ": " << decoded.status();
    EXPECT_EQ(std::get<BeliefMessage>(*decoded).value_bits, bits);
  }
}

TEST(CodecTest, RejectsInvalidBeliefValueFormats) {
  // Formats 1 and >44 identify no tier this build knows how to decode.
  for (uint64_t bad_format : {1u, 45u, 255u}) {
    const auto bytes = RawVarints({0, 0, bad_format, 0});
    EXPECT_EQ(DecodePayload(MessageKind::kBelief, bytes).status().code(),
              StatusCode::kInvalidArgument)
        << "format " << bad_format;
  }
}

TEST(CodecTest, RejectsQuantaOutsideThePrecisionBound) {
  // A forged quantum one past the 2-bit tier's bound must be refused —
  // accepted quanta re-encode byte-identically, so out-of-range values
  // would otherwise break the round-trip invariant.
  BeliefMessage forged = MakeBelief();
  forged.QuantizeValues(2);
  forged.entries[0].quant = QuantBound(2) + 1;
  EXPECT_EQ(DecodePayload(MessageKind::kBelief, Encoded(Payload{forged}))
                .status()
                .code(),
            StatusCode::kOutOfRange);
  forged.entries[0].quant = -QuantBound(2) - 1;
  EXPECT_EQ(DecodePayload(MessageKind::kBelief, Encoded(Payload{forged}))
                .status()
                .code(),
            StatusCode::kOutOfRange);
  // The bound itself (the saturation value) is legal.
  forged.entries[0].quant = QuantBound(2);
  EXPECT_TRUE(
      DecodePayload(MessageKind::kBelief, Encoded(Payload{forged})).ok());
}

TEST(CodecTest, RejectsBitFlippedQuantizedFrames) {
  // End-to-end: a v4 data frame with any single payload byte corrupted is
  // caught by the frame CRC before the payload codec ever runs.
  DataFrame data;
  data.from = 1;
  data.to = 2;
  data.seq = 7;
  data.payload = MakeQuantized(13);
  std::vector<uint8_t> bytes;
  EncodeFrame(Frame{data}, &bytes);
  for (size_t bit = 0; bit < 8 * bytes.size(); bit += 37) {
    std::vector<uint8_t> flipped = bytes;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    FrameAssembler assembler;
    assembler.Feed(flipped);
    size_t accepted = 0;
    for (;;) {
      Result<std::optional<Frame>> next = assembler.Next();
      if (!next.ok() || !next->has_value()) break;
      ++accepted;
    }
    EXPECT_EQ(accepted, 0u) << "bit " << bit << " accepted";
  }
}

TEST(CodecTest, RejectsUnknownEnumBytes) {
  std::vector<uint8_t> feedback = Encoded(Payload{MakeRichFeedback()});
  feedback[0] = 7;  // closure kind
  EXPECT_FALSE(DecodePayload(MessageKind::kFeedback, feedback).ok());

  // Split beyond the closure's edge count.
  FeedbackAnnouncement bad_split = MakeRichFeedback();
  std::vector<uint8_t> bytes = Encoded(Payload{bad_split});
  bytes[1] = 0x07;  // split varint: 7 > 3 edges
  EXPECT_FALSE(DecodePayload(MessageKind::kFeedback, bytes).ok());
}

// --- Frame codec ---------------------------------------------------------------

std::vector<uint8_t> EncodedFrame(const Frame& frame) {
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  return bytes;
}

TEST(FrameCodecTest, EveryFrameTypeRoundTripsThroughTheAssembler) {
  DataFrame data;
  data.from = 4;
  data.to = 2;
  data.via = 17;
  data.deliver_at = 9;
  data.seq = 1234;
  data.payload = MakeBelief();

  MarkFrame mark;
  mark.shard = 1;
  mark.phase = 1;
  mark.index = 12;
  mark.frames_sent = 7;
  mark.updates_sent = 21;
  mark.max_change = 0.25;
  mark.pending = true;

  QueryResponseFrame response;
  response.request_id = 99;
  response.ok = true;
  response.reached = 3;
  response.rows = {"peer=0 entity=1 values=Defoe", "peer=2 entity=1 values=Defoe"};

  const std::vector<Frame> frames = {
      Frame{data}, Frame{HelloFrame{0, 2, 24, 0x1122334455667788ull, 41}},
      Frame{mark}, Frame{QueryRequestFrame{5, 1, 4, "SELECT author"}},
      Frame{response}, Frame{LinkAckFrame{1, 0x1122334455667788ull, 42}}};

  // Feed the whole stream one byte at a time: the assembler must hold
  // partial frames and release each one exactly once, in order.
  FrameAssembler assembler;
  std::vector<uint8_t> stream;
  for (const Frame& frame : frames) {
    const std::vector<uint8_t> bytes = EncodedFrame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  std::vector<Frame> out;
  for (uint8_t byte : stream) {
    assembler.Feed(std::span(&byte, 1));
    for (;;) {
      auto next = assembler.Next();
      ASSERT_TRUE(next.ok()) << next.status();
      if (!next->has_value()) break;
      out.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(out.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(FrameTypeOf(out[i]), FrameTypeOf(frames[i]));
    EXPECT_EQ(EncodedFrame(out[i]), EncodedFrame(frames[i]))
        << "frame " << i << " re-encode differs";
  }
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

/// Recomputes a framed buffer's CRC32 after the test mutated the body —
/// so the mutation surfaces as the targeted decode error, not DataLoss.
void PatchCrc(std::vector<uint8_t>* bytes) {
  const uint32_t crc = Crc32(std::span<const uint8_t>(
      bytes->data() + kFrameHeaderBytes, bytes->size() - kFrameHeaderBytes));
  for (int i = 0; i < 4; ++i) {
    (*bytes)[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
}

TEST(FrameCodecTest, RejectsOversizedAndUndersizedLengthPrefixes) {
  FrameAssembler oversized;
  const std::vector<uint8_t> huge = {0xff, 0xff, 0xff, 0xff,
                                     0x00, 0x00, 0x00, 0x00};
  oversized.Feed(huge);
  EXPECT_EQ(oversized.Next().status().code(), StatusCode::kOutOfRange);

  // Length 1 cannot even hold the seq varint + version + type.
  FrameAssembler undersized;
  const std::vector<uint8_t> tiny = {0x01, 0x00, 0x00, 0x00,
                                     0x00, 0x00, 0x00, 0x00, 0x00};
  undersized.Feed(tiny);
  EXPECT_EQ(undersized.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodecTest, RejectsVersionMismatchAndUnknownType) {
  // The checksummed region starts with the (single-byte, seq-0) link
  // sequence varint; version and type follow it.
  std::vector<uint8_t> bytes = EncodedFrame(Frame{HelloFrame{0, 1, 4}});
  bytes[kFrameHeaderBytes + 1] = kWireFormatVersion + 1;
  PatchCrc(&bytes);
  FrameAssembler wrong_version;
  wrong_version.Feed(bytes);
  EXPECT_EQ(wrong_version.Next().status().code(),
            StatusCode::kFailedPrecondition);

  bytes = EncodedFrame(Frame{HelloFrame{0, 1, 4}});
  bytes[kFrameHeaderBytes + 2] = 0x77;  // frame type
  PatchCrc(&bytes);
  FrameAssembler unknown_type;
  unknown_type.Feed(bytes);
  EXPECT_EQ(unknown_type.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodecTest, FlagsChecksumMismatchAsDataLoss) {
  std::vector<uint8_t> bytes = EncodedFrame(Frame{HelloFrame{0, 1, 4}});
  bytes.back() ^= 0x40;  // corrupt the body without touching the framing
  FrameAssembler assembler;
  assembler.Feed(bytes);
  EXPECT_EQ(assembler.Next().status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodecTest, ReportsTheLinkSequenceOfEveryDeliveredFrame) {
  MarkFrame mark;
  mark.shard = 1;
  std::vector<uint8_t> stream;
  EncodeFrame(Frame{HelloFrame{3, 4, 9, 77, 12}}, 0, &stream);
  EncodeFrame(Frame{mark}, 12, &stream);
  EncodeFrame(Frame{mark}, 300, &stream);  // multi-byte varint
  FrameAssembler assembler;
  assembler.Feed(stream);
  const uint64_t expected[] = {0, 12, 300};
  for (uint64_t seq : expected) {
    auto next = assembler.Next();
    ASSERT_TRUE(next.ok()) << next.status();
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ(assembler.last_seq(), seq);
  }
}

TEST(FrameCodecTest, DataFramePayloadConsumesTheBodyExactly) {
  DataFrame data;
  data.from = 0;
  data.to = 1;
  data.deliver_at = 2;
  data.seq = 3;
  data.payload = MakeRichProbe();
  std::vector<uint8_t> bytes = EncodedFrame(Frame{data});
  // One extra payload byte inside the framed body must be flagged by the
  // payload decoder, not silently ignored.
  bytes.push_back(0x00);
  bytes[0] += 1;  // patch the length prefix to cover the extra byte
  FrameAssembler assembler;
  assembler.Feed(bytes);
  EXPECT_FALSE(assembler.Next().ok());
}

TEST(SimTransportTest, DeterministicLossForSeed) {
  auto run = [] {
    NetworkOptions options;
    options.send_probability = 0.5;
    options.seed = 9;
    SimTransport network(2, options);
    std::vector<bool> delivered;
    for (int i = 0; i < 100; ++i) {
      network.Send(0, 1, std::nullopt, MakeBelief());
      network.AdvanceTick();
      delivered.push_back(!network.Drain(1).empty());
    }
    return delivered;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pdms
