// Heavy-churn soak: repeated mapping removal, feedback ingestion and
// undo-session rollback under seeded link faults and parallel lanes,
// asserting the engine leaks no pool slots, alias-session entries, vars
// or probe-cache residue across the churn.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "mapping/mapping_generator.h"
#include "net/fault_injection.h"
#include "net/network.h"
#include "pdms/pdms.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

constexpr size_t kAttrs = 11;
constexpr size_t kChurnIterations = 12;

/// Churn iterations per soak loop. The nightly node-soak CI job promotes
/// this suite to a long run via PDMS_SOAK_ITERATIONS; PR runs keep the
/// fast default.
size_t ChurnIterations() {
  if (const char* env = std::getenv("PDMS_SOAK_ITERATIONS")) {
    const unsigned long value = std::strtoul(env, nullptr, 10);
    if (value > 0) return static_cast<size_t>(value);
  }
  return kChurnIterations;
}

Schema MakeSchema(const std::string& name, size_t attrs = kAttrs) {
  Schema schema(name);
  for (size_t a = 0; a < attrs; ++a) {
    EXPECT_TRUE(schema.AddAttribute(name + "_a" + std::to_string(a)).ok());
  }
  return schema;
}

/// The intro example on a fault-injecting simulated network: duplicated,
/// reordered and delayed frames over two worker lanes. With `adversarial`
/// set, peer 1 additionally lies and equivocates per a seeded
/// ByzantinePlan and every peer runs the admission guard.
Pdms MakeChurnPdms(uint64_t seed = 17, bool adversarial = false) {
  Rng rng(seed);
  EngineOptions options;
  options.probe_ttl = 5;
  PdmsBuilder builder;
  builder.WithOptions(options).WithParallelism(2);
  if (adversarial) {
    ByzantineGuardOptions guard;
    guard.enabled = true;
    ByzantinePlan plan;
    plan.seed = 7;
    plan.lie_probability = 0.4;
    plan.invert_values = true;
    plan.equivocate_rate = 0.2;
    plan.adversaries = {1};
    builder.WithByzantineGuard(guard).WithByzantinePlan(plan);
  }
  builder.WithTransport([](size_t peers, const EngineOptions&) {
    NetworkOptions net;
    net.seed = 99;
    FaultPlan plan;
    plan.seed = 4242;
    plan.duplicate_rate = 0.05;
    plan.reorder_rate = 0.10;
    plan.delay_ticks_max = 2;
    return std::unique_ptr<Transport>(std::make_unique<FaultInjectingTransport>(
        std::make_unique<SimTransport>(peers, net), plan));
  });
  for (int p = 0; p < 4; ++p) {
    builder.AddPeer(MakeSchema(StrFormat("p%d", p + 1)));
  }
  const std::vector<std::pair<PeerId, PeerId>> links = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}};
  for (EdgeId e = 0; e < links.size(); ++e) {
    const std::vector<AttributeId> wrong =
        e == 4 ? std::vector<AttributeId>{0} : std::vector<AttributeId>{};
    builder.AddMapping(
        links[e].first, links[e].second,
        MakeConceptMapping(StrFormat("m%u", e), kAttrs, wrong, &rng));
  }
  Result<Pdms> built = builder.Build();
  EXPECT_TRUE(built.ok()) << built.status().message();
  return std::move(built).value();
}

/// Every size that could leak, flattened in a fixed traversal order:
/// mapping tables, replica pools, the message/member SoA pools, belief
/// routes, alias-session tables of every link, interned vars and the
/// probe cache — across all peers.
struct Footprint {
  std::vector<size_t> dims;
  bool operator==(const Footprint&) const = default;

  size_t total() const {
    size_t sum = 0;
    for (const size_t d : dims) sum += d;
    return sum;
  }
};

Footprint Measure(const Pdms& pdms) {
  Footprint footprint;
  for (PeerId p = 0; p < pdms.peer_count(); ++p) {
    const Peer::Image image = pdms.peer(p).CaptureImage();
    footprint.dims.push_back(image.mappings.size());
    footprint.dims.push_back(image.replicas.size());
    footprint.dims.push_back(image.var_to_factor_pool.size());
    footprint.dims.push_back(image.factor_to_var_pool.size());
    footprint.dims.push_back(image.member_pool.size());
    footprint.dims.push_back(image.member_owner_pool.size());
    footprint.dims.push_back(image.owned_pos_pool.size());
    footprint.dims.push_back(image.belief_routes.size());
    footprint.dims.push_back(image.links.size());
    for (const Peer::LinkImage& link : image.links) {
      footprint.dims.push_back(link.tx_id_by_alias.size());
      footprint.dims.push_back(link.rx_id_of.size());
      footprint.dims.push_back(link.replica_of_alias.size());
    }
    footprint.dims.push_back(image.guard_slot_pool.size());
    footprint.dims.push_back(image.vars.size());
    footprint.dims.push_back(image.probe_cache.size());
  }
  return footprint;
}

FeedbackAnnouncement ChurnFeedback(size_t iteration) {
  FeedbackAnnouncement announcement;
  announcement.closure.kind = Closure::Kind::kCycle;
  announcement.closure.edges = {0, 1, 2, 3};
  announcement.closure.split = 4;
  announcement.closure.source = 0;
  announcement.closure.sink = 0;
  announcement.delta = 0.1;
  const AttributeId root = static_cast<AttributeId>(iteration % kAttrs);
  announcement.feedback = {
      {root,
       iteration % 2 == 0 ? FeedbackSign::kNegative : FeedbackSign::kPositive,
       {{0, root}, {1, root}, {2, root}, {3, root}}}};
  return announcement;
}

TEST(ChurnSoakTest, UndoChurnUnderLinkFaultsLeavesNoResidue) {
  Pdms pdms = MakeChurnPdms();
  ASSERT_GT(pdms.session().Discover(), 0u);
  pdms.session().Converge(25);
  const Footprint baseline = Measure(pdms);
  ASSERT_GT(baseline.total(), 0u);

  for (size_t i = 0; i < ChurnIterations(); ++i) {
    {
      UndoSession undo = pdms.StartUndoSession();
      pdms.InjectFeedback(ChurnFeedback(i));
      // Alternate which mapping disappears so every link sees churn.
      ASSERT_TRUE(pdms.RemoveMapping(static_cast<EdgeId>(i % 5)).ok());
      pdms.session().Converge(3);
      EXPECT_NE(Measure(pdms), baseline) << "iteration " << i;
      // Rollback on scope exit.
    }
    EXPECT_EQ(Measure(pdms), baseline) << "iteration " << i;
    // Keep traffic flowing between iterations: stale in-flight frames
    // from the rolled-back execution must drain without growing state.
    pdms.session().Step();
    EXPECT_EQ(Measure(pdms), baseline) << "iteration " << i;
  }
}

TEST(ChurnSoakTest, GuardedAdversarialChurnLeavesNoResidue) {
  // Same churn loop, but peer 1 lies and equivocates while every peer
  // runs the admission guard: rejected entries, equivocation handling,
  // demotion bookkeeping and the per-slot guard history must all churn
  // without leaking state, and rollback must restore guard pools exactly.
  Pdms pdms = MakeChurnPdms(17, /*adversarial=*/true);
  ASSERT_GT(pdms.session().Discover(), 0u);
  pdms.session().Converge(25);
  // The guard actually engaged: the equivocating adversary was caught.
  EXPECT_GT(pdms.engine().GuardRejectedBeliefs(), 0u);
  const Footprint baseline = Measure(pdms);
  ASSERT_GT(baseline.total(), 0u);

  for (size_t i = 0; i < ChurnIterations(); ++i) {
    {
      UndoSession undo = pdms.StartUndoSession();
      pdms.InjectFeedback(ChurnFeedback(i));
      ASSERT_TRUE(pdms.RemoveMapping(static_cast<EdgeId>(i % 5)).ok());
      pdms.session().Converge(3);
      // Rollback on scope exit.
    }
    EXPECT_EQ(Measure(pdms), baseline) << "iteration " << i;
    pdms.session().Step();
    EXPECT_EQ(Measure(pdms), baseline) << "iteration " << i;
  }
}

TEST(ChurnSoakTest, CommittedRemovalsShrinkAndThenHoldSteady) {
  Pdms pdms = MakeChurnPdms();
  ASSERT_GT(pdms.session().Discover(), 0u);
  pdms.session().Converge(25);
  const Footprint baseline = Measure(pdms);

  // Committed removals must actually release state...
  {
    UndoSession undo = pdms.StartUndoSession();
    ASSERT_TRUE(pdms.RemoveMapping(4).ok());
    undo.Commit();
  }
  pdms.session().Converge(10);
  const Footprint shrunk = Measure(pdms);
  EXPECT_LT(shrunk.total(), baseline.total());

  // ...and the smaller footprint must be a fixpoint: further rounds under
  // the same faulty links neither grow nor shrink it.
  for (int i = 0; i < 8; ++i) {
    pdms.session().Step();
    EXPECT_EQ(Measure(pdms), shrunk) << "round " << i;
  }
}

TEST(ChurnSoakTest, RepeatedConvergeCyclesDoNotGrowState) {
  // Converging an already-converged network over lossy, duplicating links
  // must be a no-op for every pool: duplicates and reorders are absorbed
  // without minting new aliases or vars.
  Pdms pdms = MakeChurnPdms();
  ASSERT_GT(pdms.session().Discover(), 0u);
  pdms.session().Converge(25);
  const Footprint converged = Measure(pdms);

  for (int cycle = 0; cycle < 4; ++cycle) {
    pdms.session().Converge(5);
    EXPECT_EQ(Measure(pdms), converged) << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace pdms
