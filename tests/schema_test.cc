#include <set>

#include <gtest/gtest.h>

#include "schema/alignment.h"
#include "schema/bibliographic.h"
#include "schema/dictionary.h"
#include "schema/schema.h"

namespace pdms {
namespace {

TEST(SchemaTest, AddAndFindAttributes) {
  Schema schema("art");
  Result<AttributeId> creator = schema.AddAttribute("Creator", "who made it");
  ASSERT_TRUE(creator.ok());
  EXPECT_EQ(*creator, 0u);
  ASSERT_TRUE(schema.AddAttribute("Subject").ok());
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_TRUE(schema.Contains("Creator"));
  EXPECT_FALSE(schema.Contains("creator"));  // case-sensitive by design
  Result<AttributeId> found = schema.Find("Subject");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 1u);
  EXPECT_EQ(schema.attribute(0).comment, "who made it");
}

TEST(SchemaTest, RejectsDuplicatesAndEmpty) {
  Schema schema("s");
  ASSERT_TRUE(schema.AddAttribute("a").ok());
  EXPECT_EQ(schema.AddAttribute("a").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddAttribute("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.Find("missing").status().code(), StatusCode::kNotFound);
}

TEST(DictionaryTest, CanonicalizesKnownTokens) {
  const Dictionary& dict = Dictionary::Bibliographic();
  EXPECT_EQ(dict.Canonicalize("titre"), "title");
  EXPECT_EQ(dict.Canonicalize("auteur"), "author");
  EXPECT_EQ(dict.Canonicalize("creator"), "author");
  EXPECT_EQ(dict.Canonicalize("unknown_token"), "unknown_token");
  // The deliberate faux ami: editeur (publisher) canonicalizes to editor.
  EXPECT_EQ(dict.Canonicalize("editeur"), "editor");
}

TEST(DictionaryTest, CanonicalTokensDropAffixes) {
  const Dictionary& dict = Dictionary::Bibliographic();
  EXPECT_EQ(dict.CanonicalTokens("hasAuthor"),
            (std::vector<std::string>{"author"}));
  EXPECT_EQ(dict.CanonicalTokens("title_field"),
            (std::vector<std::string>{"title"}));
  EXPECT_EQ(dict.CanonicalTokens("motsCles"),
            (std::vector<std::string>{"mots", "cles"}));  // not in dictionary
}

TEST(BibliographicTest, FamilyShape) {
  const auto family = MakeBibliographicOntologies();
  ASSERT_EQ(family.size(), 6u);
  std::set<std::string> names;
  for (const auto& ontology : family) {
    names.insert(ontology.schema.name());
    // "about thirty concepts" each (Section 5.2).
    EXPECT_GE(ontology.schema.size(), 28u) << ontology.schema.name();
    EXPECT_LE(ontology.schema.size(), 34u);
    ASSERT_EQ(ontology.schema.size(), ontology.concept_of.size());
    // Concepts are unique within an ontology.
    std::set<ConceptId> concepts(ontology.concept_of.begin(),
                                 ontology.concept_of.end());
    EXPECT_EQ(concepts.size(), ontology.concept_of.size());
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(BibliographicTest, SomeConceptsAreOmitted) {
  const auto family = MakeBibliographicOntologies();
  size_t omissions = 0;
  for (const auto& ontology : family) {
    for (ConceptId c = 0; c < BibliographicConcepts::Count(); ++c) {
      if (!ontology.AttributeForConcept(c).has_value()) ++omissions;
    }
  }
  // The family deliberately omits a few concepts (⊥ sources) but not many.
  EXPECT_GE(omissions, 3u);
  EXPECT_LE(omissions, 12u);
}

TEST(BibliographicTest, GroundTruthOracle) {
  const auto family = MakeBibliographicOntologies();
  GroundTruth truth(&family);
  const auto title_ref = family[0].schema.Find("title");
  const auto titre_fr = family[1].schema.Find("titre");
  const auto auteur_fr = family[1].schema.Find("auteur");
  ASSERT_TRUE(title_ref.ok());
  ASSERT_TRUE(titre_fr.ok());
  ASSERT_TRUE(auteur_fr.ok());
  EXPECT_TRUE(truth.SameConcept(0, *title_ref, 1, *titre_fr));
  EXPECT_FALSE(truth.SameConcept(0, *title_ref, 1, *auteur_fr));
}

TEST(AlignerTest, SimilarityTechniquesDiffer) {
  AlignerOptions edit_options;
  edit_options.technique = AlignmentTechnique::kEditDistance;
  Aligner edit_aligner(edit_options);

  AlignerOptions dict_options;
  dict_options.technique = AlignmentTechnique::kTokenDictionary;
  Aligner dict_aligner(dict_options);

  // Dictionary resolves the translation edit distance cannot.
  EXPECT_LT(edit_aligner.Similarity("annee", "year"), 0.3);
  EXPECT_DOUBLE_EQ(dict_aligner.Similarity("annee", "year"), 1.0);

  // Edit distance falls for the faux ami; the dictionary does too (it maps
  // editeur -> editor), which is the seeded systematic error.
  EXPECT_GT(edit_aligner.Similarity("editeur", "editor"), 0.7);
  EXPECT_DOUBLE_EQ(dict_aligner.Similarity("editeur", "editor"), 1.0);
}

TEST(AlignerTest, AlignRefToFrenchFindsCorrectPairsAndTheTrap) {
  const auto family = MakeBibliographicOntologies();
  GroundTruth truth(&family);
  AlignerOptions options;
  options.technique = AlignmentTechnique::kCombined;
  options.min_score = 0.5;
  Aligner aligner(options);
  const auto correspondences =
      aligner.Align(family[0].schema, family[1].schema);
  ASSERT_FALSE(correspondences.empty());

  size_t correct = 0;
  size_t wrong = 0;
  bool editor_trap = false;
  for (const Correspondence& c : correspondences) {
    if (truth.SameConcept(0, c.source, 1, c.target)) {
      ++correct;
    } else {
      ++wrong;
      if (family[0].schema.attribute(c.source).name == "editor" &&
          family[1].schema.attribute(c.target).name == "editeur") {
        editor_trap = true;
      }
    }
  }
  // The aligner works (mostly) but produces genuine errors, including the
  // editor -> editeur faux ami.
  EXPECT_GT(correct, 15u);
  EXPECT_GE(wrong, 1u);
  EXPECT_TRUE(editor_trap);
}

TEST(AlignerTest, ThresholdControlsYield) {
  const auto family = MakeBibliographicOntologies();
  AlignerOptions strict;
  strict.min_score = 0.9;
  AlignerOptions loose;
  loose.min_score = 0.3;
  const auto strict_result =
      Aligner(strict).Align(family[0].schema, family[4].schema);
  const auto loose_result =
      Aligner(loose).Align(family[0].schema, family[4].schema);
  EXPECT_LT(strict_result.size(), loose_result.size());
}

TEST(AlignerTest, SelfAlignmentIsPerfect) {
  const auto family = MakeBibliographicOntologies();
  GroundTruth truth(&family);
  Aligner aligner;
  const auto correspondences =
      aligner.Align(family[0].schema, family[0].schema);
  EXPECT_EQ(correspondences.size(), family[0].schema.size());
  for (const Correspondence& c : correspondences) {
    EXPECT_EQ(c.source, c.target);
    EXPECT_DOUBLE_EQ(c.score, 1.0);
  }
}

TEST(AlignerTest, TechniqueNamesAreStable) {
  EXPECT_EQ(AlignmentTechniqueName(AlignmentTechnique::kEditDistance),
            "edit-distance");
  EXPECT_EQ(AlignmentTechniqueName(AlignmentTechnique::kCombined), "combined");
}

}  // namespace
}  // namespace pdms
