// Fault-tolerance tests: deterministic fault injection, exactly-once
// delivery over faulty links, tick-barrier and mark timeouts surfacing as
// Status, forged-mark rejection, and graceful degradation (quarantine)
// when a shard dies mid-run.
//
// The standing invariant under fire: frame-level faults live *below* the
// retransmission layer, so a sharded run with drops, duplicates, reorders,
// corruption and link kills lands on posteriors bitwise-identical to the
// fault-free single-process engine.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bibliographic_pdms.h"
#include "gtest/gtest.h"
#include "net/fault_injection.h"
#include "net/network.h"
#include "net/socket_transport.h"
#include "node/pdms_node.h"

namespace pdms {
namespace {

using std::chrono::steady_clock;

// --- Deterministic draws --------------------------------------------------------

TEST(FaultPlanTest, DrawsAreDeterministicAndAttemptSalted) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_rate = 0.5;
  plan.duplicate_rate = 0.5;
  plan.reorder_rate = 0.5;
  plan.corrupt_rate = 0.5;
  plan.link_kill_rate = 0.5;
  plan.delay_ticks_max = 4;

  bool attempts_differ = false;
  for (uint64_t seq = 0; seq < 64; ++seq) {
    const FaultDecision first = DrawFaults(plan, /*stream=*/7, seq, 0);
    const FaultDecision again = DrawFaults(plan, /*stream=*/7, seq, 0);
    EXPECT_EQ(first.drop, again.drop);
    EXPECT_EQ(first.duplicate, again.duplicate);
    EXPECT_EQ(first.reorder, again.reorder);
    EXPECT_EQ(first.corrupt, again.corrupt);
    EXPECT_EQ(first.kill_link, again.kill_link);
    EXPECT_EQ(first.delay_ticks, again.delay_ticks);
    EXPECT_EQ(first.corrupt_entropy, again.corrupt_entropy);
    // A retransmission redraws: over 64 events at rate 0.5, at least one
    // drop verdict must flip between attempt 0 and attempt 1, or drop_rate
    // < 1 could never guarantee eventual delivery.
    const FaultDecision retry = DrawFaults(plan, /*stream=*/7, seq, 1);
    attempts_differ = attempts_differ || first.drop != retry.drop;
  }
  EXPECT_TRUE(attempts_differ);

  // Disabled plans decide nothing.
  const FaultDecision none = DrawFaults(FaultPlan{}, 7, 3, 0);
  EXPECT_FALSE(none.drop || none.duplicate || none.reorder || none.corrupt ||
               none.kill_link || none.delay_ticks > 0);
}

TEST(ByzantinePlanTest, ForgeryDrawsAreDeterministicAndColludersAgree) {
  ByzantinePlan plan;
  plan.seed = 5;
  plan.lie_probability = 0.5;
  plan.invert_values = true;
  plan.equivocate_rate = 0.25;
  plan.adversaries = {1, 2};

  const FactorId factor{0xabc, 0xdef};
  const auto make_bundle = [&] {
    BeliefMessage bundle;
    bundle.AddGroup(0, factor,
                    {BeliefEntry{0, Belief{0.1, 0.9}},
                     BeliefEntry{1, Belief{0.2, 0.8}},
                     BeliefEntry{2, Belief{0.3, 0.7}},
                     BeliefEntry{3, Belief{0.4, 0.6}},
                     BeliefEntry{4, Belief{0.5, 0.5}},
                     BeliefEntry{5, Belief{0.6, 0.4}},
                     BeliefEntry{6, Belief{0.7, 0.3}},
                     BeliefEntry{7, Belief{0.8, 0.2}}});
    return bundle;
  };
  const std::vector<FactorId> ids = {factor};

  // Same (plan, sender, recipient, round): bitwise-identical forgeries.
  BeliefMessage first = make_bundle();
  BeliefMessage again = make_bundle();
  const uint64_t forged = ApplyByzantineFaults(plan, 1, 3, 4, ids, &first);
  EXPECT_GT(forged, 0u);
  EXPECT_EQ(ApplyByzantineFaults(plan, 1, 3, 4, ids, &again), forged);
  ASSERT_EQ(first.entries.size(), again.entries.size());
  for (size_t i = 0; i < first.entries.size(); ++i) {
    EXPECT_EQ(first.entries[i].position, again.entries[i].position);
    EXPECT_EQ(first.entries[i].belief.correct, again.entries[i].belief.correct);
    EXPECT_EQ(first.entries[i].belief.incorrect,
              again.entries[i].belief.incorrect);
  }

  // An honest sender's bundle passes through untouched.
  BeliefMessage honest = make_bundle();
  EXPECT_EQ(ApplyByzantineFaults(plan, 0, 3, 4, ids, &honest), 0u);
  EXPECT_EQ(honest.entries.size(), 8u);

  // Colluding adversaries draw without the sender in the key: both forge
  // the identical values toward the same recipient — corroborating lies.
  plan.collude = true;
  BeliefMessage from_one = make_bundle();
  BeliefMessage from_two = make_bundle();
  ApplyByzantineFaults(plan, 1, 3, 4, ids, &from_one);
  ApplyByzantineFaults(plan, 2, 3, 4, ids, &from_two);
  ASSERT_EQ(from_one.entries.size(), from_two.entries.size());
  for (size_t i = 0; i < from_one.entries.size(); ++i) {
    EXPECT_EQ(from_one.entries[i].belief.correct,
              from_two.entries[i].belief.correct);
    EXPECT_EQ(from_one.entries[i].belief.incorrect,
              from_two.entries[i].belief.incorrect);
  }
}

TEST(FaultInjectingTransportTest, ReplaysExactlyForASeed) {
  // Serially-driven decorated SimTransport: the same seed must perturb the
  // same envelopes the same way, twice.
  auto run = [] {
    FaultPlan plan;
    plan.seed = 99;
    plan.drop_rate = 0.2;
    plan.duplicate_rate = 0.2;
    plan.reorder_rate = 0.2;
    plan.delay_ticks_max = 3;
    FaultInjectingTransport transport(
        std::make_unique<SimTransport>(3, NetworkOptions{}), plan);
    std::vector<std::string> delivered;
    for (int i = 0; i < 60; ++i) {
      ProbeMessage probe;
      probe.origin = static_cast<PeerId>(i);
      transport.Send(i % 3, (i + 1) % 3, std::nullopt, probe);
      transport.AdvanceTick();
      for (PeerId p = 0; p < 3; ++p) {
        for (const Envelope& envelope : transport.Drain(p)) {
          const auto& payload = std::get<ProbeMessage>(envelope.payload);
          delivered.push_back(std::to_string(envelope.from) + ">" +
                              std::to_string(envelope.to) + "#" +
                              std::to_string(payload.origin));
        }
      }
    }
    const FaultStats stats = transport.fault_stats();
    EXPECT_GT(stats.events, 0u);
    EXPECT_GT(stats.dropped + stats.duplicated + stats.reordered +
                  stats.delayed,
              0u);
    return delivered;
  };
  EXPECT_EQ(run(), run());
}

// --- Exactly-once delivery over faulty links ------------------------------------

Result<std::unique_ptr<SocketTransport>> MakeShardTransport(
    uint32_t shard, const FaultPlan& plan) {
  SocketTransportOptions options;
  options.peer_count = 2;
  options.local_shard = shard;
  options.shard_addresses = {"127.0.0.1:0", "127.0.0.1:0"};
  options.shard_of = {0, 1};
  options.link_fault_plan = plan;
  // Tight recovery timers keep the test fast even when the tail frame of a
  // burst is the one that gets dropped.
  options.retransmit_timeout_ms = 50;
  options.reconnect_backoff_initial_ms = 5;
  options.reconnect_backoff_max_ms = 50;
  return SocketTransport::Create(std::move(options));
}

TEST(SocketFaultToleranceTest, LinksDeliverExactlyOnceInOrderUnderFire) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.2;
  plan.duplicate_rate = 0.2;
  plan.reorder_rate = 0.2;
  plan.corrupt_rate = 0.1;
  plan.link_kill_rate = 0.05;

  auto made0 = MakeShardTransport(0, plan);
  auto made1 = MakeShardTransport(1, plan);
  ASSERT_TRUE(made0.ok()) << made0.status().ToString();
  ASSERT_TRUE(made1.ok()) << made1.status().ToString();
  SocketTransport& sender = **made0;
  SocketTransport& receiver = **made1;
  ASSERT_TRUE(sender.SetShardAddress(1, receiver.local_address()).ok());
  ASSERT_TRUE(receiver.SetShardAddress(0, sender.local_address()).ok());
  ASSERT_TRUE(sender.ConnectAll().ok());
  ASSERT_TRUE(receiver.ConnectAll().ok());

  constexpr int kFrames = 120;
  for (int i = 0; i < kFrames; ++i) {
    ProbeMessage probe;
    probe.origin = static_cast<PeerId>(i);
    sender.Send(0, 1, std::nullopt, probe);
  }
  receiver.AdvanceTick();  // cross-shard frames carry deliver_at = 1

  std::vector<PeerId> origins;
  const auto deadline = steady_clock::now() + std::chrono::seconds(60);
  while (origins.size() < kFrames && steady_clock::now() < deadline) {
    for (const Envelope& envelope : receiver.Drain(1)) {
      origins.push_back(std::get<ProbeMessage>(envelope.payload).origin);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(origins.size(), static_cast<size_t>(kFrames))
      << "delivery did not recover from injected faults";
  // Exactly once, in program order: drops retransmitted, duplicates
  // skipped, reorders healed by the sequence cursor.
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(origins[i], static_cast<PeerId>(i));
  }
  // Nothing extra trickles in afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(receiver.Drain(1).empty());

  const FaultStats stats = sender.link_fault_stats();
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(sender.frames_retransmitted(), 0u);
  EXPECT_GT(sender.reconnects() + receiver.duplicate_frames_skipped(), 0u);
}

TEST(SocketFaultToleranceTest, TickBarrierTimeoutSurfacesDeadlineExceeded) {
  // drop_rate 1.0 means the loopback frame can never come home; the tick
  // must still advance, with the failure reported instead of swallowed.
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 1.0;
  SocketTransportOptions options;
  options.peer_count = 2;
  options.link_fault_plan = plan;
  options.barrier_timeout_ms = 200;
  options.retransmit_timeout_ms = 50;
  options.reconnect_backoff_initial_ms = 5;
  options.reconnect_backoff_max_ms = 20;
  auto made = SocketTransport::Create(std::move(options));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  SocketTransport& transport = **made;
  ASSERT_TRUE(transport.ConnectAll().ok());
  EXPECT_TRUE(transport.barrier_status().ok());

  transport.Send(0, 1, std::nullopt, ProbeMessage{});
  const uint64_t before = transport.now();
  const Status status = transport.AdvanceTickWithStatus();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status.ToString();
  EXPECT_EQ(transport.now(), before + 1);  // clock advanced regardless
  EXPECT_EQ(transport.barrier_status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(transport.HasPendingMessages());
}

// --- Node-level: bitwise posteriors under fire ----------------------------------

/// Same workload knobs as tests/node_test.cc and tools/pdms_node_main.cc.
EngineOptions WorkloadOptions() {
  EngineOptions options;
  options.delta_override = 0.1;
  options.probe_ttl = 4;
  options.closure_limits.max_cycle_length = 4;
  options.closure_limits.max_path_length = 3;
  options.damping = 0.5;
  return options;
}

constexpr size_t kRounds = 25;

std::unique_ptr<PdmsNode> MakeShardNode(uint32_t shard,
                                        NodeOptions node_options,
                                        const FaultPlan& plan) {
  SocketTransport* transport = nullptr;
  bench::BibliographicPdms workload = bench::MakeBibliographicPdms(
      WorkloadOptions(),
      [&](size_t peer_count, const EngineOptions&)
          -> std::unique_ptr<Transport> {
        SocketTransportOptions options;
        options.peer_count = peer_count;
        options.local_shard = shard;
        options.shard_addresses = {"127.0.0.1:0", "127.0.0.1:0"};
        options.shard_of.resize(peer_count);
        for (PeerId p = 0; p < peer_count; ++p) options.shard_of[p] = p % 2;
        options.link_fault_plan = plan;
        options.retransmit_timeout_ms = 50;
        options.reconnect_backoff_initial_ms = 5;
        options.reconnect_backoff_max_ms = 100;
        auto created = SocketTransport::Create(std::move(options));
        EXPECT_TRUE(created.ok()) << created.status().ToString();
        if (!created.ok()) return nullptr;
        transport = created->get();
        return std::move(created).value();
      });
  EXPECT_NE(transport, nullptr);
  if (transport == nullptr) return nullptr;
  Result<std::unique_ptr<PdmsNode>> node =
      PdmsNode::Create(std::move(workload.pdms), std::move(node_options));
  EXPECT_TRUE(node.ok()) << node.status().ToString();
  if (!node.ok()) return nullptr;
  return std::move(node).value();
}

struct ShardRun {
  Status status = Status::Ok();
  size_t replicas = 0;
  ConvergenceReport report;
};

void Drive(PdmsNode* node, ShardRun* run) {
  Result<size_t> replicas = node->RunDiscovery();
  if (!replicas.ok()) {
    run->status = replicas.status();
    return;
  }
  run->replicas = *replicas;
  Result<ConvergenceReport> report = node->RunRounds();
  if (!report.ok()) {
    run->status = report.status();
    return;
  }
  run->report = *report;
}

TEST(SocketFaultToleranceTest, TwoShardNodesUnderLinkFaultsMatchReferenceBitwise) {
  bench::BibliographicPdms reference =
      bench::MakeBibliographicPdms(WorkloadOptions());
  ASSERT_GT(reference.pdms.session().Discover(), 0u);
  reference.pdms.session().Converge(kRounds);

  FaultPlan plan;
  plan.seed = 2026;
  plan.drop_rate = 0.1;
  plan.duplicate_rate = 0.1;
  plan.reorder_rate = 0.1;
  plan.corrupt_rate = 0.05;
  plan.link_kill_rate = 0.02;

  NodeOptions node_options;
  node_options.max_rounds = kRounds;
  std::unique_ptr<PdmsNode> node0 = MakeShardNode(0, node_options, plan);
  std::unique_ptr<PdmsNode> node1 = MakeShardNode(1, node_options, plan);
  ASSERT_NE(node0, nullptr);
  ASSERT_NE(node1, nullptr);
  ASSERT_TRUE(node0->SetShardAddress(1, node1->local_address()).ok());
  ASSERT_TRUE(node1->SetShardAddress(0, node0->local_address()).ok());
  ASSERT_TRUE(node0->Connect().ok());
  ASSERT_TRUE(node1->Connect().ok());

  ShardRun runs[2];
  std::thread t0(Drive, node0.get(), &runs[0]);
  std::thread t1(Drive, node1.get(), &runs[1]);
  t0.join();
  t1.join();
  ASSERT_TRUE(runs[0].status.ok()) << runs[0].status.ToString();
  ASSERT_TRUE(runs[1].status.ok()) << runs[1].status.ToString();
  EXPECT_EQ(runs[0].report.rounds, runs[1].report.rounds);

  // The faults really fired…
  const FaultStats faults0 = node0->transport().link_fault_stats();
  const FaultStats faults1 = node1->transport().link_fault_stats();
  EXPECT_GT(faults0.events + faults1.events, 0u);
  EXPECT_GT(faults0.dropped + faults1.dropped, 0u);

  // …and still: every posterior bitwise-identical to the fault-free
  // single-process run.
  size_t compared = 0;
  const Digraph& graph = reference.pdms.graph();
  for (EdgeId e : graph.LiveEdges()) {
    const PeerId owner = graph.edge(e).src;
    PdmsNode& node = owner % 2 == 0 ? *node0 : *node1;
    ASSERT_TRUE(node.transport().IsLocalPeer(owner));
    const size_t attrs = reference.family[owner].schema.size();
    for (AttributeId a = 0; a < attrs; ++a) {
      ASSERT_EQ(node.pdms().Posterior(e, a), reference.pdms.Posterior(e, a))
          << "edge " << e << " attribute " << a;
      ++compared;
    }
  }
  EXPECT_GT(compared, 100u);
}

// --- Mark validation and timeouts -----------------------------------------------

TEST(SocketFaultToleranceTest, DiscoveryReportsUnavailableWhenAPeerNeverAppears) {
  NodeOptions node_options;
  node_options.max_rounds = kRounds;
  node_options.mark_timeout_ms = 300;
  std::unique_ptr<PdmsNode> node0 =
      MakeShardNode(0, node_options, FaultPlan{});
  ASSERT_NE(node0, nullptr);
  // Shard 1 never starts: the mark wait must give up with a Status, not
  // hang the driver thread.
  Result<size_t> replicas = node0->RunDiscovery();
  ASSERT_FALSE(replicas.ok());
  EXPECT_EQ(replicas.status().code(), StatusCode::kUnavailable)
      << replicas.status().ToString();
}

TEST(SocketFaultToleranceTest, ForgedMarksAreRejectedWithoutAdvancingBarriers) {
  NodeOptions node_options;
  node_options.max_rounds = kRounds;
  std::unique_ptr<PdmsNode> node0 =
      MakeShardNode(0, node_options, FaultPlan{});
  std::unique_ptr<PdmsNode> node1 =
      MakeShardNode(1, node_options, FaultPlan{});
  ASSERT_NE(node0, nullptr);
  ASSERT_NE(node1, nullptr);
  ASSERT_TRUE(node0->SetShardAddress(1, node1->local_address()).ok());
  ASSERT_TRUE(node1->SetShardAddress(0, node0->local_address()).ok());
  ASSERT_TRUE(node0->Connect().ok());
  ASSERT_TRUE(node1->Connect().ok());

  // Forge marks from an un-greeted client connection: one impersonating
  // shard 1's discovery step 0, one from an out-of-range shard, and one
  // impersonating the node's own shard. None may enter the barrier.
  auto forge = [&](uint32_t claimed_shard) {
    MarkFrame forged;
    forged.shard = claimed_shard;
    forged.phase = 0;
    forged.index = 0;
    forged.pending = false;
    std::vector<uint8_t> bytes;
    EncodeFrame(Frame{forged}, &bytes);
    // Deliver over a raw client socket, exactly as an attacker would.
    sockaddr_storage addr{};
    socklen_t addr_len = 0;
    ASSERT_TRUE(
        ParseSocketAddress(node0->local_address(), &addr, &addr_len).ok());
    const int fd = socket(addr.ss_family, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), addr_len), 0);
    ASSERT_EQ(send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    close(fd);
  };
  forge(1);   // impersonates the real peer shard
  forge(7);   // out-of-range shard id
  forge(0);   // impersonates the receiving node itself

  const auto deadline = steady_clock::now() + std::chrono::seconds(5);
  while (node0->rejected_marks() < 3 && steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(node0->rejected_marks(), 3u);

  // The forgeries changed nothing: a full synchronized run still completes
  // with both shards in lockstep.
  ShardRun runs[2];
  std::thread t0(Drive, node0.get(), &runs[0]);
  std::thread t1(Drive, node1.get(), &runs[1]);
  t0.join();
  t1.join();
  ASSERT_TRUE(runs[0].status.ok()) << runs[0].status.ToString();
  ASSERT_TRUE(runs[1].status.ok()) << runs[1].status.ToString();
  EXPECT_GT(runs[0].replicas, 0u);
  EXPECT_EQ(runs[0].report.rounds, runs[1].report.rounds);
  EXPECT_TRUE(node0->quarantined().empty());
}

// --- Graceful degradation -------------------------------------------------------

TEST(SocketFaultToleranceTest, SurvivorQuarantinesDeadShardAndKeepsServing) {
  NodeOptions survivor_options;
  survivor_options.max_rounds = kRounds;
  survivor_options.heartbeat_interval_ms = 20;
  survivor_options.quarantine_after_ms = 250;
  std::unique_ptr<PdmsNode> survivor =
      MakeShardNode(0, survivor_options, FaultPlan{});

  NodeOptions victim_options;
  victim_options.max_rounds = 3;  // bows out of the run early…
  std::unique_ptr<PdmsNode> victim =
      MakeShardNode(1, victim_options, FaultPlan{});
  ASSERT_NE(survivor, nullptr);
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(survivor->SetShardAddress(1, victim->local_address()).ok());
  ASSERT_TRUE(victim->SetShardAddress(0, survivor->local_address()).ok());
  ASSERT_TRUE(survivor->Connect().ok());
  ASSERT_TRUE(victim->Connect().ok());

  ShardRun runs[2];
  std::thread t0(Drive, survivor.get(), &runs[0]);
  std::thread t1(Drive, victim.get(), &runs[1]);
  t1.join();
  victim.reset();  // …and then the process "dies": links go dark
  t0.join();

  // The survivor must degrade, not fail: shard 1 quarantined, the run
  // finished, and the node still answers queries for its own peers.
  ASSERT_TRUE(runs[0].status.ok()) << runs[0].status.ToString();
  const std::vector<uint32_t> quarantined = survivor->quarantined();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0], 1u);
  EXPECT_TRUE(survivor->transport().IsAbandoned(1));

  survivor->pdms().peer(0).store().Insert(1, {{0, "survivor-doc"}});
  QueryRequestFrame request;
  request.request_id = 11;
  request.origin = 0;
  request.ttl = 2;
  request.text =
      "SELECT " + survivor->pdms().peer(0).schema().attribute(0).name;
  const QueryResponseFrame response = survivor->ExecuteSnapshotQuery(request);
  EXPECT_TRUE(response.ok) << response.error;
  bool found = false;
  for (const std::string& row : response.rows) {
    found = found || row.find("survivor-doc") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(SocketFaultToleranceTest, ShutdownDrainDeadlineBoundsAndCountsDrops) {
  const auto make = [](uint32_t shard, int drain_ms) {
    SocketTransportOptions options;
    options.peer_count = 2;
    options.local_shard = shard;
    options.shard_addresses = {"127.0.0.1:0", "127.0.0.1:0"};
    options.shard_of = {0, 1};
    options.retransmit_timeout_ms = 20;
    options.reconnect_backoff_initial_ms = 5;
    options.reconnect_backoff_max_ms = 20;
    options.shutdown_drain_ms = drain_ms;
    return SocketTransport::Create(std::move(options));
  };

  // A negative drain deadline is a configuration error, caught at Create.
  {
    auto bad = make(0, /*drain_ms=*/-1);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  }

  auto made0 = make(0, /*drain_ms=*/200);
  auto made1 = make(1, /*drain_ms=*/200);
  ASSERT_TRUE(made0.ok()) << made0.status().ToString();
  ASSERT_TRUE(made1.ok()) << made1.status().ToString();
  SocketTransport& sender = **made0;
  ASSERT_TRUE(sender.SetShardAddress(1, (*made1)->local_address()).ok());
  ASSERT_TRUE((*made1)->SetShardAddress(0, sender.local_address()).ok());
  ASSERT_TRUE(sender.ConnectAll().ok());
  ASSERT_TRUE((*made1)->ConnectAll().ok());

  // Kill the receiving end, then stage frames that can never be acked: the
  // sender's shutdown must give up after the drain deadline and account
  // every undrained frame instead of hanging on the dead link.
  made1->reset();
  constexpr int kStranded = 10;
  for (int i = 0; i < kStranded; ++i) {
    ProbeMessage probe;
    probe.origin = static_cast<PeerId>(i);
    sender.Send(0, 1, std::nullopt, probe);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const steady_clock::time_point before = steady_clock::now();
  sender.Shutdown();
  EXPECT_LT(steady_clock::now() - before, std::chrono::seconds(5));
  EXPECT_GT(sender.stats().frames_dropped_at_shutdown, 0u);
  EXPECT_LE(sender.stats().frames_dropped_at_shutdown,
            static_cast<uint64_t>(kStranded));
}

TEST(SocketFaultToleranceTest, CleanShutdownDropsNothing) {
  FaultPlan plan;  // healthy links
  auto made0 = MakeShardTransport(0, plan);
  auto made1 = MakeShardTransport(1, plan);
  ASSERT_TRUE(made0.ok()) << made0.status().ToString();
  ASSERT_TRUE(made1.ok()) << made1.status().ToString();
  SocketTransport& sender = **made0;
  SocketTransport& receiver = **made1;
  ASSERT_TRUE(sender.SetShardAddress(1, receiver.local_address()).ok());
  ASSERT_TRUE(receiver.SetShardAddress(0, sender.local_address()).ok());
  ASSERT_TRUE(sender.ConnectAll().ok());
  ASSERT_TRUE(receiver.ConnectAll().ok());

  for (int i = 0; i < 20; ++i) {
    ProbeMessage probe;
    probe.origin = static_cast<PeerId>(i);
    sender.Send(0, 1, std::nullopt, probe);
  }
  // A live peer acks everything well inside the default drain window.
  sender.Shutdown();
  EXPECT_EQ(sender.stats().frames_dropped_at_shutdown, 0u);
  receiver.Shutdown();
  EXPECT_EQ(receiver.stats().frames_dropped_at_shutdown, 0u);
}

}  // namespace
}  // namespace pdms
