// End-to-end integration: the full Section 5.2 pipeline — synthesize the
// bibliographic ontology family, align automatically, assemble the PDMS,
// discover closures with probes, run embedded inference, and verify the
// detector separates erroneous from correct mappings. This is the Fig. 12
// pipeline under test (the bench only reports it).

#include <algorithm>

#include <gtest/gtest.h>

#include "bench/bibliographic_pdms.h"

namespace pdms {
namespace {

class BibliographicPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    EngineOptions options;
    options.default_prior = 0.5;
    options.delta_override = 0.1;
    options.probe_ttl = 4;
    options.closure_limits.max_cycle_length = 4;
    options.closure_limits.max_path_length = 3;
    options.damping = 0.5;
    workload_ = new bench::BibliographicPdms(
        bench::MakeBibliographicPdms(options));
    factors_ = workload_->pdms.session().Discover();
    workload_->pdms.session().Converge(60);
    // Average out the few frustrated-loop oscillators.
    posteriors_ = new std::vector<double>(workload_->entries.size(), 0.0);
    constexpr int kWindow = 8;
    for (int round = 0; round < kWindow; ++round) {
      workload_->pdms.session().Step();
      for (size_t i = 0; i < workload_->entries.size(); ++i) {
        (*posteriors_)[i] += workload_->pdms.Posterior(
                                 workload_->entries[i].edge,
                                 workload_->entries[i].attribute) /
                             kWindow;
      }
    }
  }

  static void TearDownTestSuite() {
    delete workload_;
    delete posteriors_;
    workload_ = nullptr;
    posteriors_ = nullptr;
  }

  static bench::BibliographicPdms* workload_;
  static std::vector<double>* posteriors_;
  static size_t factors_;
};

bench::BibliographicPdms* BibliographicPipeline::workload_ = nullptr;
std::vector<double>* BibliographicPipeline::posteriors_ = nullptr;
size_t BibliographicPipeline::factors_ = 0;

TEST_F(BibliographicPipeline, WorkloadResemblesThePaper) {
  // Paper: 396 generated mappings, 86 erroneous. Ballpark agreement is the
  // requirement; exact counts depend on aligner internals.
  EXPECT_GT(workload_->entries.size(), 300u);
  EXPECT_LT(workload_->entries.size(), 650u);
  const double error_rate =
      static_cast<double>(workload_->ErroneousCount()) /
      static_cast<double>(workload_->entries.size());
  EXPECT_GT(error_rate, 0.10);
  EXPECT_LT(error_rate, 0.30);
}

TEST_F(BibliographicPipeline, DiscoveryFindsClosures) {
  EXPECT_GT(factors_, 500u);  // many (closure × attribute) factors
}

TEST_F(BibliographicPipeline, ErroneousMappingsScoreLowerOnAverage) {
  double wrong_sum = 0.0;
  size_t wrong_count = 0;
  double correct_sum = 0.0;
  size_t correct_count = 0;
  for (size_t i = 0; i < workload_->entries.size(); ++i) {
    if (workload_->erroneous[i]) {
      wrong_sum += (*posteriors_)[i];
      ++wrong_count;
    } else {
      correct_sum += (*posteriors_)[i];
      ++correct_count;
    }
  }
  ASSERT_GT(wrong_count, 0u);
  ASSERT_GT(correct_count, 0u);
  const double mean_wrong = wrong_sum / static_cast<double>(wrong_count);
  const double mean_correct = correct_sum / static_cast<double>(correct_count);
  // Clear separation between the two populations.
  EXPECT_LT(mean_wrong, mean_correct - 0.15);
}

TEST_F(BibliographicPipeline, LowThresholdDetectionIsPrecise) {
  // Paper: precision >= 0.8 for small θ.
  size_t flagged = 0;
  size_t correct = 0;
  for (size_t i = 0; i < workload_->entries.size(); ++i) {
    if ((*posteriors_)[i] < 0.2) {
      ++flagged;
      if (workload_->erroneous[i]) ++correct;
    }
  }
  ASSERT_GT(flagged, 10u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(flagged), 0.8);
}

TEST_F(BibliographicPipeline, BeatsRandomGuessingAtEveryThreshold) {
  const double base_rate =
      static_cast<double>(workload_->ErroneousCount()) /
      static_cast<double>(workload_->entries.size());
  for (double theta = 0.1; theta < 1.0; theta += 0.1) {
    size_t flagged = 0;
    size_t correct = 0;
    for (size_t i = 0; i < workload_->entries.size(); ++i) {
      if ((*posteriors_)[i] < theta) {
        ++flagged;
        if (workload_->erroneous[i]) ++correct;
      }
    }
    if (flagged == 0) continue;
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(flagged),
              base_rate)
        << "theta " << theta;
  }
}

TEST_F(BibliographicPipeline, RecallRisesWithThreshold) {
  auto recall_at = [&](double theta) {
    size_t correct = 0;
    for (size_t i = 0; i < workload_->entries.size(); ++i) {
      if ((*posteriors_)[i] < theta && workload_->erroneous[i]) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(workload_->ErroneousCount());
  };
  EXPECT_LE(recall_at(0.2), recall_at(0.5));
  EXPECT_LE(recall_at(0.5), recall_at(0.8));
  // The phase transition region catches a substantial share (paper: ~50%).
  EXPECT_GT(recall_at(0.65), 0.4);
}

TEST_F(BibliographicPipeline, SystematicConsistentErrorsEvadeCycleDetection) {
  // The seeded faux ami — ref101's "editor" aligned onto french221's
  // "editeur" (which denotes publisher) — is *systematic*: the dictionary
  // plants the same mistake in every alignment involving those attributes.
  // The wrong mappings therefore compose consistently around cycles
  // (editor -> editeur -> editor), producing POSITIVE feedback: this is
  // exactly the "two or more compensating errors" event whose probability
  // the paper's ∆ term models, and it is invisible to closure analysis by
  // construction. The network must (wrongly but inevitably) rate this
  // entry high — the structural reason detection recall plateaus below
  // 100% in Figure 12.
  const auto& family = workload_->family;
  bool found = false;
  for (size_t i = 0; i < workload_->entries.size(); ++i) {
    const MappingVarKey& var = workload_->entries[i];
    const Edge& edge = workload_->pdms.graph().edge(var.edge);
    if (family[edge.src].schema.name() != "ref101" ||
        family[edge.dst].schema.name() != "french221") {
      continue;
    }
    if (family[edge.src].schema.attribute(var.attribute).name != "editor") {
      continue;
    }
    found = true;
    EXPECT_TRUE(workload_->erroneous[i]);  // it really is wrong...
    EXPECT_GT((*posteriors_)[i], 0.5);     // ...yet mutually consistent.
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pdms
