#include <gtest/gtest.h>

#include "baseline/chatty_web.h"
#include "baseline/random_guess.h"
#include "factor/exact.h"
#include "factor/factor.h"
#include "factor/factor_graph.h"
#include "util/rng.h"

namespace pdms {
namespace {

/// The introductory example's closure evidence for attribute 0 (edge ids
/// follow Figure 4: m12=0, m23=1, m34=2, m41=3, m24=4).
std::vector<ClosureEvidence> IntroEvidence() {
  return {
      {{{0, 0}, {1, 0}, {2, 0}, {3, 0}}, FeedbackSign::kPositive},  // f1+
      {{{0, 0}, {4, 0}, {3, 0}}, FeedbackSign::kNegative},          // f2−
      {{{4, 0}, {1, 0}, {2, 0}}, FeedbackSign::kNegative},          // f3−
  };
}

TEST(ChattyWebTest, HardExclusionOverreacts) {
  ChattyWebOptions options;
  options.variant = ChattyWebVariant::kHardExclusion;
  const auto quality = ChattyWebAnalyze(IntroEvidence(), options);
  ASSERT_EQ(quality.size(), 5u);
  // Every mapping sits on some negative closure, so the naive heuristic
  // disqualifies all five — although only m24 is wrong. This is the
  // Section 6 comparison: the old approach ignores correlations.
  size_t disqualified = 0;
  for (const auto& [var, score] : quality) {
    if (score < 0.5) ++disqualified;
  }
  EXPECT_EQ(disqualified, 5u);
}

TEST(ChattyWebTest, NaiveBayesRanksFaultyMappingWorst) {
  ChattyWebOptions options;
  options.variant = ChattyWebVariant::kNaiveBayes;
  const auto quality = ChattyWebAnalyze(IntroEvidence(), options);
  // m24 (edge 4) must be the worst-rated mapping.
  const double m24 = quality.at(MappingVarKey{4, 0});
  for (const auto& [var, score] : quality) {
    EXPECT_GE(score, m24 - 1e-12) << var.ToString();
  }
  EXPECT_LT(m24, 0.5);
}

TEST(ChattyWebTest, NaiveBayesDoubleCountsCorrelatedEvidence) {
  // Mapping A (edge 0) shares three negative closures with mapping B
  // (edge 1), which is the actual culprit. Correct inference mostly blames
  // B and keeps A near its prior; the independence assumption multiplies
  // the three negatives against A as if they were fresh evidence each time
  // — the "ignored all interdependencies among the mappings and cycles"
  // flaw the paper's Section 6 calls out.
  const std::vector<ClosureEvidence> evidence = {
      {{{0, 0}, {1, 0}}, FeedbackSign::kNegative},
      {{{0, 0}, {1, 0}, {2, 0}}, FeedbackSign::kNegative},
      {{{0, 0}, {1, 0}, {3, 0}}, FeedbackSign::kNegative},
  };
  ChattyWebOptions options;
  options.variant = ChattyWebVariant::kNaiveBayes;
  const auto naive = ChattyWebAnalyze(evidence, options);

  // Exact inference on the equivalent factor graph.
  FactorGraph graph;
  std::vector<VarId> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(graph.AddVariable("m"));
  for (VarId v : vars) {
    ASSERT_TRUE(graph.AddFactor(std::make_unique<PriorFactor>(v, 0.5)).ok());
  }
  for (const ClosureEvidence& closure : evidence) {
    std::vector<VarId> scope;
    for (const MappingVarKey& var : closure.members) {
      scope.push_back(vars[var.edge]);
    }
    ASSERT_TRUE(graph
                    .AddFactor(std::make_unique<CycleFeedbackFactor>(
                        scope, /*positive=*/false, /*delta=*/0.1))
                    .ok());
  }
  const auto exact = ExactMarginalsBruteForce(graph);
  ASSERT_TRUE(exact.ok());

  // The naive score for A undershoots the exact marginal substantially.
  EXPECT_LT(naive.at(MappingVarKey{0, 0}),
            (*exact)[0].ProbabilityCorrect() - 0.05);
}

TEST(ChattyWebTest, PositiveOnlyEvidenceRaisesQuality) {
  std::vector<ClosureEvidence> evidence = {
      {{{0, 0}, {1, 0}, {2, 0}}, FeedbackSign::kPositive}};
  ChattyWebOptions options;
  options.variant = ChattyWebVariant::kNaiveBayes;
  const auto quality = ChattyWebAnalyze(evidence, options);
  for (const auto& [var, score] : quality) EXPECT_GT(score, 0.5);
}

TEST(ChattyWebTest, NeutralEvidenceIsIgnored) {
  std::vector<ClosureEvidence> evidence = {
      {{{0, 0}, {1, 0}}, FeedbackSign::kNeutral}};
  ChattyWebOptions options;
  options.variant = ChattyWebVariant::kNaiveBayes;
  options.prior = 0.7;
  const auto quality = ChattyWebAnalyze(evidence, options);
  for (const auto& [var, score] : quality) EXPECT_NEAR(score, 0.7, 1e-12);
}

TEST(ChattyWebTest, HardExclusionKeepsCleanMappings) {
  std::vector<ClosureEvidence> evidence = {
      {{{0, 0}, {1, 0}}, FeedbackSign::kPositive},
      {{{2, 0}, {3, 0}}, FeedbackSign::kNegative}};
  ChattyWebOptions options;
  options.variant = ChattyWebVariant::kHardExclusion;
  const auto quality = ChattyWebAnalyze(evidence, options);
  EXPECT_DOUBLE_EQ(quality.at(MappingVarKey{0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(quality.at(MappingVarKey{1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(quality.at(MappingVarKey{2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(quality.at(MappingVarKey{3, 0}), 0.0);
}

TEST(RandomGuessTest, FlagRateAndDeterminism) {
  std::vector<MappingVarKey> vars;
  for (EdgeId e = 0; e < 2000; ++e) vars.push_back(MappingVarKey{e, 0});
  Rng rng_a(5);
  Rng rng_b(5);
  const auto flags_a = RandomGuessErroneous(vars, 0.25, &rng_a);
  const auto flags_b = RandomGuessErroneous(vars, 0.25, &rng_b);
  EXPECT_EQ(flags_a, flags_b);
  size_t flagged = 0;
  for (const auto& [var, flag] : flags_a) {
    if (flag) ++flagged;
  }
  EXPECT_NEAR(static_cast<double>(flagged) / vars.size(), 0.25, 0.03);
}

}  // namespace
}  // namespace pdms
