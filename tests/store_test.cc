// Tests for the durable peer state layer (store/): snapshot
// encode/decode round-trips over a real converged engine image,
// rejection of torn / truncated / corrupt input, the double-buffered
// SnapshotStore with its fallback-to-older-slot behavior, and the
// deployment state-epoch fingerprint.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "graph/topology.h"
#include "mapping/mapping_generator.h"
#include "pdms/pdms.h"
#include "store/snapshot.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

constexpr size_t kAttrs = 11;

Schema MakeSchema(const std::string& name, size_t attrs = kAttrs) {
  Schema schema(name);
  for (size_t a = 0; a < attrs; ++a) {
    EXPECT_TRUE(schema.AddAttribute(name + "_a" + std::to_string(a)).ok());
  }
  return schema;
}

/// The intro example (Figure 4) through the public builder; m24 (EdgeId 4)
/// garbles attribute 0.
Pdms MakeIntroPdms(EngineOptions options = {}, uint64_t seed = 17) {
  Rng rng(seed);
  options.probe_ttl = 5;
  PdmsBuilder builder;
  builder.WithOptions(options).WithInstantTransport();
  for (int p = 0; p < 4; ++p) {
    builder.AddPeer(MakeSchema(StrFormat("p%d", p + 1)));
  }
  const std::vector<std::pair<PeerId, PeerId>> links = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}};
  for (EdgeId e = 0; e < links.size(); ++e) {
    const std::vector<AttributeId> wrong =
        e == 4 ? std::vector<AttributeId>{0} : std::vector<AttributeId>{};
    builder.AddMapping(
        links[e].first, links[e].second,
        MakeConceptMapping(StrFormat("m%u", e), kAttrs, wrong, &rng));
  }
  Result<Pdms> built = builder.Build();
  EXPECT_TRUE(built.ok()) << built.status().message();
  return std::move(built).value();
}

/// A snapshot with every field populated: a converged engine image plus a
/// synthetic in-flight inbox covering two payload kinds.
NodeSnapshot MakeSnapshot(Pdms& pdms) {
  pdms.session().Discover();
  pdms.session().Converge(10);

  NodeSnapshot snapshot;
  snapshot.state_epoch = 0x0123456789abcdefull;
  snapshot.round = 7;
  snapshot.tick = 41;
  snapshot.quiet = 2;
  snapshot.previous_change = 0.1254321;
  snapshot.report_updates = 991;
  snapshot.engine = pdms.engine().CaptureImage();

  CapturedFrame probe;
  probe.seq = 12;
  probe.envelope.from = 1;
  probe.envelope.to = 2;
  probe.envelope.via = EdgeId{1};
  probe.envelope.deliver_at = 42;
  ProbeMessage message;
  message.origin = 1;
  message.ttl = 3;
  message.route = {1, 2};
  message.trail = {{AttributeId{0}, std::nullopt}, {std::nullopt, AttributeId{4}}};
  probe.envelope.payload = message;
  snapshot.inbox.push_back(probe);

  CapturedFrame feedback;
  feedback.seq = 13;
  feedback.envelope.from = 3;
  feedback.envelope.to = 0;
  feedback.envelope.deliver_at = 42;
  FeedbackAnnouncement announcement;
  announcement.closure.kind = Closure::Kind::kCycle;
  announcement.closure.edges = {0, 1, 2, 3};
  announcement.closure.split = 4;
  announcement.closure.source = 0;
  announcement.closure.sink = 0;
  announcement.delta = 0.1;
  announcement.feedback = {{0,
                            FeedbackSign::kPositive,
                            {{0, 0}, {1, 0}, {2, 0}, {3, 0}}}};
  feedback.envelope.payload = announcement;
  snapshot.inbox.push_back(feedback);
  return snapshot;
}

std::string MakeTempDir() {
  char templ[] = "/tmp/pdms_store_test_XXXXXX";
  const char* dir = mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir;
}

// --- Wire format -------------------------------------------------------------

TEST(SnapshotCodecTest, EncodeDecodeRoundTripsBitwise) {
  Pdms pdms = MakeIntroPdms();
  const NodeSnapshot snapshot = MakeSnapshot(pdms);
  const std::vector<uint8_t> bytes = EncodeSnapshot(snapshot);
  ASSERT_FALSE(bytes.empty());

  Result<NodeSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded.value().state_epoch, snapshot.state_epoch);
  EXPECT_EQ(decoded.value().round, snapshot.round);
  EXPECT_EQ(decoded.value().tick, snapshot.tick);
  EXPECT_EQ(decoded.value().quiet, snapshot.quiet);
  EXPECT_EQ(decoded.value().previous_change, snapshot.previous_change);
  EXPECT_EQ(decoded.value().report_updates, snapshot.report_updates);
  EXPECT_EQ(decoded.value().engine.peers.size(), snapshot.engine.peers.size());
  EXPECT_EQ(decoded.value().inbox.size(), snapshot.inbox.size());

  // Decoding is lossless and encoding deterministic, so re-encoding the
  // decoded snapshot must reproduce the exact byte stream.
  EXPECT_EQ(EncodeSnapshot(decoded.value()), bytes);
}

TEST(SnapshotCodecTest, RestoredImageReproducesPosteriors) {
  Pdms pdms = MakeIntroPdms();
  NodeSnapshot snapshot = MakeSnapshot(pdms);

  std::vector<double> before;
  for (EdgeId e : pdms.graph().LiveEdges()) {
    for (AttributeId a = 0; a < kAttrs; ++a) {
      before.push_back(pdms.Posterior(e, a));
    }
  }

  // Perturb the live engine, then restore through the wire format.
  pdms.session().Step();
  Result<NodeSnapshot> decoded = DecodeSnapshot(EncodeSnapshot(snapshot));
  ASSERT_TRUE(decoded.ok());
  pdms.engine().RestoreImage(std::move(decoded.value().engine));

  std::vector<double> after;
  for (EdgeId e : pdms.graph().LiveEdges()) {
    for (AttributeId a = 0; a < kAttrs; ++a) {
      after.push_back(pdms.Posterior(e, a));
    }
  }
  EXPECT_EQ(before, after);
}

TEST(SnapshotCodecTest, RejectsTruncatedInput) {
  Pdms pdms = MakeIntroPdms();
  const std::vector<uint8_t> bytes = EncodeSnapshot(MakeSnapshot(pdms));

  for (const size_t keep :
       {size_t{0}, size_t{4}, size_t{7}, bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<uint8_t> torn(bytes.begin(), bytes.begin() + keep);
    Result<NodeSnapshot> decoded = DecodeSnapshot(torn);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << keep << " bytes accepted";
  }
}

TEST(SnapshotCodecTest, RejectsBadMagicAndVersion) {
  Pdms pdms = MakeIntroPdms();
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeSnapshot(pdms));

  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeSnapshot(bad_magic).ok());

  // The format version follows the 8-byte magic.
  std::vector<uint8_t> bad_version = bytes;
  bad_version[8] ^= 0xff;
  EXPECT_FALSE(DecodeSnapshot(bad_version).ok());
}

TEST(SnapshotCodecTest, RejectsPayloadCorruption) {
  Pdms pdms = MakeIntroPdms();
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeSnapshot(pdms));

  // A single flipped payload bit must trip the CRC.
  std::vector<uint8_t> corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x01;
  Result<NodeSnapshot> decoded = DecodeSnapshot(corrupt);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeSnapshot(trailing).ok());
}

// --- SnapshotStore -----------------------------------------------------------

TEST(SnapshotStoreTest, LoadsHighestRoundAcrossSlots) {
  Pdms pdms = MakeIntroPdms();
  NodeSnapshot snapshot = MakeSnapshot(pdms);
  const std::string dir = MakeTempDir();
  const SnapshotStore store(dir, /*shard=*/0);

  snapshot.round = 4;
  ASSERT_TRUE(store.Save(snapshot).ok());  // slot 0
  snapshot.round = 5;
  snapshot.tick = 57;
  ASSERT_TRUE(store.Save(snapshot).ok());  // slot 1

  Result<NodeSnapshot> loaded = store.Load(snapshot.state_epoch);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().round, 5u);
  EXPECT_EQ(loaded.value().tick, 57u);
}

TEST(SnapshotStoreTest, FallsBackWhenNewerSlotIsCorrupt) {
  Pdms pdms = MakeIntroPdms();
  NodeSnapshot snapshot = MakeSnapshot(pdms);
  const std::string dir = MakeTempDir();
  const SnapshotStore store(dir, /*shard=*/0);

  snapshot.round = 4;
  ASSERT_TRUE(store.Save(snapshot).ok());
  snapshot.round = 5;
  ASSERT_TRUE(store.Save(snapshot).ok());

  // Tear the round-5 slot as a crash mid-write would: keep a prefix only.
  const std::string newer = store.SlotPath(5 % 2);
  std::ifstream in(newer, std::ios::binary);
  std::vector<char> contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(newer, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 3));
  out.close();

  Result<NodeSnapshot> loaded = store.Load(snapshot.state_epoch);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().round, 4u);

  // Destroy the older slot too: nothing left, the caller cold-starts.
  std::ofstream(store.SlotPath(4 % 2), std::ios::binary | std::ios::trunc)
      << "garbage";
  Result<NodeSnapshot> none = store.Load(snapshot.state_epoch);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotStoreTest, RejectsForeignEpochAndEmptyDir) {
  Pdms pdms = MakeIntroPdms();
  NodeSnapshot snapshot = MakeSnapshot(pdms);
  const std::string dir = MakeTempDir();
  const SnapshotStore store(dir, /*shard=*/2);

  EXPECT_EQ(store.Load(snapshot.state_epoch).status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(store.Save(snapshot).ok());
  EXPECT_TRUE(store.Load(snapshot.state_epoch).ok());
  // A snapshot from another deployment must never be resumed.
  EXPECT_EQ(store.Load(snapshot.state_epoch + 1).status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotStoreTest, ShardsDoNotShareSlots) {
  Pdms pdms = MakeIntroPdms();
  NodeSnapshot snapshot = MakeSnapshot(pdms);
  const std::string dir = MakeTempDir();
  const SnapshotStore store0(dir, /*shard=*/0);
  const SnapshotStore store1(dir, /*shard=*/1);

  ASSERT_TRUE(store0.Save(snapshot).ok());
  EXPECT_NE(store0.SlotPath(0), store1.SlotPath(0));
  EXPECT_EQ(store1.Load(snapshot.state_epoch).status().code(),
            StatusCode::kNotFound);
}

// --- State epoch -------------------------------------------------------------

TEST(StateEpochTest, StableForEqualInputsSensitiveToDeploymentChanges) {
  Pdms pdms = MakeIntroPdms();
  const Digraph& graph = pdms.graph();
  const std::vector<uint32_t> shard_of = {0, 1, 0, 1};
  const EngineOptions options = pdms.options();

  const uint64_t epoch = ComputeStateEpoch(graph, shard_of, 2, options);
  EXPECT_EQ(epoch, ComputeStateEpoch(graph, shard_of, 2, options));

  // Shard layout, shard count and inference options all re-key the epoch.
  const std::vector<uint32_t> other_layout = {0, 1, 1, 0};
  EXPECT_NE(epoch, ComputeStateEpoch(graph, other_layout, 2, options));
  EXPECT_NE(epoch, ComputeStateEpoch(graph, shard_of, 4, options));
  EngineOptions other_options = options;
  other_options.damping += 0.125;
  EXPECT_NE(epoch, ComputeStateEpoch(graph, shard_of, 2, other_options));
  EngineOptions other_ttl = options;
  other_ttl.probe_ttl += 1;
  EXPECT_NE(epoch, ComputeStateEpoch(graph, shard_of, 2, other_ttl));
}

TEST(SnapshotCodecTest, LinkValueRanksSurviveTheRoundTrip) {
  // A shard crashed mid-trajectory with links at different precision
  // tiers: restore must hand every link its exact rank back, or the
  // resumed run would re-send coarse values the original never did.
  EngineOptions options;
  options.value_precision.error_budget = 1e-3;
  Pdms pdms = MakeIntroPdms(options);
  NodeSnapshot snapshot = MakeSnapshot(pdms);
  bool saw_links = false;
  for (Peer::Image& peer : snapshot.engine.peers) {
    for (size_t l = 0; l < peer.links.size(); ++l) {
      peer.links[l].value_rank =
          static_cast<uint32_t>(l % kValueRankCount);
      saw_links = true;
    }
  }
  ASSERT_TRUE(saw_links);

  Result<NodeSnapshot> decoded = DecodeSnapshot(EncodeSnapshot(snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  for (size_t p = 0; p < snapshot.engine.peers.size(); ++p) {
    const auto& expected = snapshot.engine.peers[p].links;
    const auto& restored = decoded.value().engine.peers[p].links;
    ASSERT_EQ(restored.size(), expected.size());
    for (size_t l = 0; l < expected.size(); ++l) {
      EXPECT_EQ(restored[l].value_rank, expected[l].value_rank);
    }
  }
}

TEST(SnapshotCodecTest, RejectsOutOfRangeLinkValueRank) {
  Pdms pdms = MakeIntroPdms();
  NodeSnapshot snapshot = MakeSnapshot(pdms);
  ASSERT_FALSE(snapshot.engine.peers.empty());
  ASSERT_FALSE(snapshot.engine.peers[0].links.empty());
  snapshot.engine.peers[0].links[0].value_rank = kValueRankCount;
  const Result<NodeSnapshot> decoded =
      DecodeSnapshot(EncodeSnapshot(snapshot));
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(StateEpochTest, ValuePrecisionReKeysTheEpoch) {
  // Quantization changes what travels on the wire and therefore the
  // posteriors: a snapshot taken under one budget must never resume under
  // another, and each precision knob re-keys independently.
  Pdms pdms = MakeIntroPdms();
  const std::vector<uint32_t> shard_of = {0, 1, 0, 1};
  const EngineOptions options = pdms.options();
  const uint64_t epoch = ComputeStateEpoch(pdms.graph(), shard_of, 2, options);

  EngineOptions budgeted = options;
  budgeted.value_precision.error_budget = 1e-3;
  const uint64_t budgeted_epoch =
      ComputeStateEpoch(pdms.graph(), shard_of, 2, budgeted);
  EXPECT_NE(epoch, budgeted_epoch);

  EngineOptions fixed_tier = budgeted;
  fixed_tier.value_precision.adaptive = false;
  EXPECT_NE(budgeted_epoch,
            ComputeStateEpoch(pdms.graph(), shard_of, 2, fixed_tier));

  EngineOptions exact_tail = budgeted;
  exact_tail.value_precision.exact_at_convergence = true;
  EXPECT_NE(budgeted_epoch,
            ComputeStateEpoch(pdms.graph(), shard_of, 2, exact_tail));
}

TEST(SnapshotCodecTest, GuardStateSurvivesTheRoundTrip) {
  // A guarded shard crashed mid-demotion: link scores, demotion levels,
  // rejection tallies, the per-slot admission history and the round clock
  // must all restore exactly, or the replayed run would re-litigate — or
  // forget — demotion decisions the original already made.
  EngineOptions options;
  options.byzantine_guard.enabled = true;
  Pdms pdms = MakeIntroPdms(options);
  NodeSnapshot snapshot = MakeSnapshot(pdms);

  bool saw_links = false;
  for (Peer::Image& peer : snapshot.engine.peers) {
    peer.round = 29;
    for (size_t l = 0; l < peer.links.size(); ++l) {
      Peer::LinkImage& link = peer.links[l];
      link.guard_score = 3.25 + static_cast<double>(l);
      link.guard_demote_level = static_cast<uint32_t>(l % 3);
      link.guard_rejections = 11 + l;
      link.guard_equivocations = 5 + l;
      link.guard_oscillations = 2 + l;
      link.guard_outliers = 1 + l;
      link.guard_dropped_bundles = 7 + l;
      link.guard_round_influence = 0.5 * static_cast<double>(l);
      link.guard_round_absorbed = static_cast<uint32_t>(l);
      saw_links = true;
    }
    for (size_t s = 0; s < peer.guard_slot_pool.size(); ++s) {
      Peer::GuardSlot& slot = peer.guard_slot_pool[s];
      slot.last_log_odds = -1.5 + static_cast<double>(s);
      slot.last_round = 28;
      slot.flips = static_cast<uint8_t>(s % 4);
      slot.last_dir = (s % 2 == 0) ? 1 : -1;
      slot.has_last = true;
    }
  }
  ASSERT_TRUE(saw_links);

  Result<NodeSnapshot> decoded = DecodeSnapshot(EncodeSnapshot(snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  for (size_t p = 0; p < snapshot.engine.peers.size(); ++p) {
    const Peer::Image& expected = snapshot.engine.peers[p];
    const Peer::Image& restored = decoded.value().engine.peers[p];
    EXPECT_EQ(restored.round, expected.round);
    ASSERT_EQ(restored.links.size(), expected.links.size());
    for (size_t l = 0; l < expected.links.size(); ++l) {
      EXPECT_EQ(restored.links[l].guard_score, expected.links[l].guard_score);
      EXPECT_EQ(restored.links[l].guard_demote_level,
                expected.links[l].guard_demote_level);
      EXPECT_EQ(restored.links[l].guard_rejections,
                expected.links[l].guard_rejections);
      EXPECT_EQ(restored.links[l].guard_equivocations,
                expected.links[l].guard_equivocations);
      EXPECT_EQ(restored.links[l].guard_oscillations,
                expected.links[l].guard_oscillations);
      EXPECT_EQ(restored.links[l].guard_outliers,
                expected.links[l].guard_outliers);
      EXPECT_EQ(restored.links[l].guard_dropped_bundles,
                expected.links[l].guard_dropped_bundles);
      EXPECT_EQ(restored.links[l].guard_round_influence,
                expected.links[l].guard_round_influence);
      EXPECT_EQ(restored.links[l].guard_round_absorbed,
                expected.links[l].guard_round_absorbed);
    }
    ASSERT_EQ(restored.guard_slot_pool.size(), expected.guard_slot_pool.size());
    for (size_t s = 0; s < expected.guard_slot_pool.size(); ++s) {
      EXPECT_EQ(restored.guard_slot_pool[s].last_log_odds,
                expected.guard_slot_pool[s].last_log_odds);
      EXPECT_EQ(restored.guard_slot_pool[s].last_round,
                expected.guard_slot_pool[s].last_round);
      EXPECT_EQ(restored.guard_slot_pool[s].flips,
                expected.guard_slot_pool[s].flips);
      EXPECT_EQ(restored.guard_slot_pool[s].last_dir,
                expected.guard_slot_pool[s].last_dir);
      EXPECT_EQ(restored.guard_slot_pool[s].has_last,
                expected.guard_slot_pool[s].has_last);
    }
  }
}

TEST(StateEpochTest, ByzantineKnobsReKeyTheEpoch) {
  // The guard changes what gets absorbed and the chaos plan changes what
  // gets sent: a snapshot taken under either configuration must never be
  // resumed under another.
  Pdms pdms = MakeIntroPdms();
  const std::vector<uint32_t> shard_of = {0, 1, 0, 1};
  const EngineOptions options = pdms.options();
  const uint64_t epoch = ComputeStateEpoch(pdms.graph(), shard_of, 2, options);

  EngineOptions guarded = options;
  guarded.byzantine_guard.enabled = true;
  const uint64_t guarded_epoch =
      ComputeStateEpoch(pdms.graph(), shard_of, 2, guarded);
  EXPECT_NE(epoch, guarded_epoch);

  EngineOptions threshold = guarded;
  threshold.byzantine_guard.soft_threshold += 1.0;
  EXPECT_NE(guarded_epoch,
            ComputeStateEpoch(pdms.graph(), shard_of, 2, threshold));

  EngineOptions chaos = options;
  chaos.byzantine.lie_probability = 0.25;
  chaos.byzantine.adversaries = {1};
  EXPECT_NE(epoch, ComputeStateEpoch(pdms.graph(), shard_of, 2, chaos));
}

TEST(StateEpochTest, ScheduleKnobsDoNotReKeyTheEpoch) {
  Pdms pdms = MakeIntroPdms();
  const std::vector<uint32_t> shard_of = {0, 0, 1, 1};
  const EngineOptions options = pdms.options();
  const uint64_t epoch = ComputeStateEpoch(pdms.graph(), shard_of, 2, options);

  // Parallelism is a scheduling choice: results — and therefore snapshots —
  // are interchangeable across it.
  EngineOptions parallel = options;
  parallel.parallelism = 8;
  EXPECT_EQ(epoch, ComputeStateEpoch(pdms.graph(), shard_of, 2, parallel));
}

}  // namespace
}  // namespace pdms
